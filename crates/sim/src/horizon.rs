//! Conservative-lookahead horizon derivation for the parallel drain.
//!
//! A Chandy–Misra–Bryant-style conservative scheme needs a *lookahead*:
//! a lower bound on how long any cross-shard interaction takes, so each
//! shard can safely advance its private state some distance past the
//! global watermark without waiting for messages from its peers. In
//! this machine the only paths between shards are the inter-chiplet
//! ring (within a GPU) and the inter-GPU switch, so the lookahead is
//! the minimum hop latency among the link levels the topology actually
//! has — a topology property, not a workload property.
//!
//! The drain itself ([`crate::drain`]) tightens this further to
//! `min(lookahead, kernel compute cycles)`: remote effects in this
//! engine apply at the canonical position of the *triggering* event,
//! not at its simulated arrival time, so the binding bound on the
//! parallel window is how soon a processed event can schedule its
//! continuation (one compute block later). See DESIGN.md §13 for the
//! full correctness argument.

use crate::config::SimConfig;

/// The topology's conservative lookahead: the minimum cross-shard link
/// latency in cycles, or `None` when no cross-shard link exists (a
/// single-chiplet, single-GPU machine — nothing to overlap) or when a
/// degenerate zero-latency link makes the horizon empty.
pub fn lookahead(cfg: &SimConfig) -> Option<f64> {
    let topo = &cfg.topology;
    let mut min: Option<u64> = None;
    if topo.chiplets_per_gpu > 1 {
        min = Some(cfg.ring_latency);
    }
    if topo.num_gpus > 1 {
        min = Some(match min {
            Some(m) => m.min(cfg.switch_latency),
            None => cfg.switch_latency,
        });
    }
    match min {
        Some(0) | None => None,
        Some(m) => Some(m as f64),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ladm_core::topology::Topology;

    fn cfg(gpus: u32, chiplets: u32, ring: u64, switch: u64) -> SimConfig {
        SimConfig {
            topology: Topology::new(gpus, chiplets),
            ring_latency: ring,
            switch_latency: switch,
            ..SimConfig::paper_multi_gpu()
        }
    }

    #[test]
    fn multi_gpu_multi_chiplet_takes_the_minimum_link() {
        // Symmetric paper machine: ring (80) < switch (250).
        let c = SimConfig::paper_multi_gpu();
        assert_eq!(lookahead(&c), Some(c.ring_latency as f64));
        // Asymmetric the other way: a fast switch under a slow ring.
        let c = cfg(4, 4, 300, 40);
        assert_eq!(lookahead(&c), Some(40.0));
        let c = cfg(2, 2, 7, 500);
        assert_eq!(lookahead(&c), Some(7.0));
    }

    #[test]
    fn single_gpu_multi_chiplet_uses_the_ring_only() {
        // fig4-style 1 GPU x 4 chiplets: the switch latency must be
        // ignored even when it is smaller than the ring's.
        let c = cfg(1, 4, 80, 3);
        assert_eq!(lookahead(&c), Some(80.0));
    }

    #[test]
    fn multi_gpu_single_chiplet_uses_the_switch_only() {
        // DGX-1-style 4 GPUs x 1 chiplet: no ring exists, so a tiny
        // ring latency must not leak into the horizon.
        let c = cfg(4, 1, 2, 250);
        assert_eq!(lookahead(&c), Some(250.0));
    }

    #[test]
    fn monolithic_has_no_horizon() {
        // Xbar-only machine: every access is intra-shard; there is no
        // cross-shard link to bound, hence no conservative window.
        let c = cfg(1, 1, 80, 250);
        assert_eq!(lookahead(&c), None);
        assert_eq!(lookahead(&SimConfig::monolithic()), None);
    }

    #[test]
    fn zero_latency_links_disable_the_horizon() {
        // A degenerate zero-cycle link means a remote effect could land
        // "immediately"; the conservative window collapses to nothing
        // and the driver must fall back to the serial-order path.
        assert_eq!(lookahead(&cfg(1, 4, 0, 250)), None);
        assert_eq!(lookahead(&cfg(4, 4, 0, 250)), None);
        assert_eq!(lookahead(&cfg(4, 1, 80, 0)), None);
        // But a zero ring with a real switch on a switch-only machine
        // still has a horizon.
        assert_eq!(lookahead(&cfg(4, 1, 0, 9)), Some(9.0));
    }
}
