//! Simulator configuration (paper Table III) and the derived
//! interconnect presets used by the evaluation figures.
//!
//! All bandwidths are stored in **bytes per core cycle** (the paper's GPUs
//! run at 1.4 GHz, so `GB/s / 1.4` bytes/cycle); all latencies in core
//! cycles.

use ladm_core::topology::Topology;

/// Converts GB/s to bytes per 1.4 GHz core cycle.
pub const fn gbps(gb_per_s: u64) -> f64 {
    gb_per_s as f64 / 1.4
}

/// Geometry and timing of one cache level.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub bytes: u64,
    /// Associativity (ways per set).
    pub assoc: u32,
    /// Line size in bytes (sectored).
    pub line_bytes: u32,
    /// Sector size in bytes (transfer granularity).
    pub sector_bytes: u32,
    /// Hit latency in cycles.
    pub latency: u64,
}

impl CacheConfig {
    /// Number of sets implied by the geometry.
    ///
    /// # Panics
    ///
    /// Panics if the geometry does not divide evenly or is not a power of
    /// two number of sets.
    pub fn num_sets(&self) -> u64 {
        let lines = self.bytes / u64::from(self.line_bytes);
        let sets = lines / u64::from(self.assoc);
        assert!(sets > 0, "cache too small for its associativity");
        assert!(
            sets.is_power_of_two(),
            "number of sets must be a power of two"
        );
        sets
    }

    /// Sectors per line.
    pub fn sectors_per_line(&self) -> u32 {
        self.line_bytes / self.sector_bytes
    }
}

/// Full simulated-machine description.
#[derive(Debug, Clone, PartialEq)]
pub struct SimConfig {
    /// Hierarchy shape (GPUs × chiplets).
    pub topology: Topology,
    /// SMs per chiplet.
    pub sms_per_chiplet: u32,
    /// Warp width (threads).
    pub warp_size: u32,
    /// Maximum resident warps per SM.
    pub warps_per_sm: u32,
    /// Maximum resident threadblocks per SM.
    pub max_tbs_per_sm: u32,
    /// Warp instructions issued per cycle per SM.
    pub issue_per_cycle: f64,
    /// Per-SM L1 data cache.
    pub l1: CacheConfig,
    /// Per-chiplet L2 partition.
    pub l2: CacheConfig,
    /// HBM access latency (row hit averaged), cycles.
    pub dram_latency: u64,
    /// HBM bandwidth per chiplet, bytes/cycle.
    pub dram_bw: f64,
    /// SM↔L2 crossbar bandwidth per chiplet, bytes/cycle.
    pub intra_chiplet_bw: f64,
    /// SM↔L2 crossbar latency, cycles.
    pub intra_chiplet_latency: u64,
    /// Inter-chiplet ring bandwidth per GPU (shared), bytes/cycle.
    pub ring_bw: f64,
    /// Inter-chiplet ring hop latency, cycles.
    pub ring_latency: u64,
    /// Inter-GPU switch link bandwidth per GPU per direction, bytes/cycle.
    pub switch_bw: f64,
    /// Inter-GPU switch latency, cycles.
    pub switch_latency: u64,
    /// Dynamically-shared L2 with remote caching (Milic et al. [51]):
    /// remote-homed read data is cached in the requester's L2 partition.
    /// Disable for the §IV-A ablation ("remote caching improves GEMM
    /// 4.8×").
    pub remote_caching: bool,
    /// Reactive page migration (the CPU-NUMA-style mechanism the paper's
    /// §II-A argues against): after this many consecutive accesses to a
    /// page from the same remote node, the page migrates there, stalling
    /// the triggering request for the page transfer. `0` disables
    /// migration (the default — LADM is proactive).
    pub migration_threshold: u32,
    /// Virtual page size in bytes.
    pub page_bytes: u64,
    /// Extra latency charged to the request that first-touch faults a page
    /// (0 = the paper's "Batch+FT-optimal" zero-overhead assumption).
    pub page_fault_cycles: u64,
    /// Cycles of compute charged per kernel loop iteration per warp
    /// (scaled further by each workload's compute intensity).
    pub base_compute_cycles: u64,
}

impl SimConfig {
    /// The paper's Table III system: 4 GPUs × 4 chiplets × 16 SMs,
    /// 1 MB L2 and 180 GB/s HBM per chiplet, 720 GB/s rings,
    /// 180 GB/s inter-GPU links.
    pub fn paper_multi_gpu() -> Self {
        SimConfig {
            topology: Topology::paper_multi_gpu(),
            sms_per_chiplet: 16,
            warp_size: 32,
            warps_per_sm: 64,
            max_tbs_per_sm: 16,
            issue_per_cycle: 4.0,
            l1: CacheConfig {
                bytes: 64 << 10,
                assoc: 4,
                line_bytes: 128,
                sector_bytes: 32,
                latency: 30,
            },
            l2: CacheConfig {
                bytes: 1 << 20,
                assoc: 16,
                line_bytes: 128,
                sector_bytes: 32,
                latency: 120,
            },
            dram_latency: 250,
            dram_bw: gbps(180),
            intra_chiplet_bw: gbps(720),
            intra_chiplet_latency: 40,
            ring_bw: gbps(720),
            ring_latency: 80,
            switch_bw: gbps(180),
            switch_latency: 250,
            remote_caching: true,
            migration_threshold: 0,
            page_bytes: 4096,
            page_fault_cycles: 0,
            base_compute_cycles: 20,
        }
    }

    /// A hypothetical monolithic GPU with the same 256 SMs: one node,
    /// 16 MB L2, aggregated HBM, an 11.2 TB/s crossbar and no NUMA
    /// penalty. The normalization reference of Figures 4 and 9.
    pub fn monolithic() -> Self {
        let paper = Self::paper_multi_gpu();
        SimConfig {
            topology: Topology::monolithic(),
            sms_per_chiplet: 256,
            l2: CacheConfig {
                bytes: 16 << 20,
                ..paper.l2
            },
            dram_bw: gbps(180) * 16.0,
            intra_chiplet_bw: gbps(11_200),
            ring_bw: gbps(11_200),
            switch_bw: gbps(11_200),
            ..paper
        }
    }

    /// Figure 4 "Xbar Multi-GPU" point: four 64-SM GPU nodes behind a
    /// switch with `link_gbps` GB/s per link (90/180/360 evaluated).
    pub fn fig4_xbar(link_gbps: u64) -> Self {
        let paper = Self::paper_multi_gpu();
        SimConfig {
            topology: Topology::new(4, 1),
            sms_per_chiplet: 64,
            l2: CacheConfig {
                bytes: 4 << 20,
                ..paper.l2
            },
            dram_bw: gbps(720),
            intra_chiplet_bw: gbps(2880),
            switch_bw: gbps(link_gbps),
            ring_bw: gbps(2880),
            ..paper
        }
    }

    /// Figure 4 "Ring MCM-GPU" point: one package of four 64-SM chiplets
    /// on a ring of `ring_gbps` GB/s (1400/2800 evaluated).
    pub fn fig4_ring(ring_gbps: u64) -> Self {
        let paper = Self::paper_multi_gpu();
        SimConfig {
            topology: Topology::new(1, 4),
            sms_per_chiplet: 64,
            l2: CacheConfig {
                bytes: 4 << 20,
                ..paper.l2
            },
            dram_bw: gbps(720),
            intra_chiplet_bw: gbps(2880),
            ring_bw: gbps(ring_gbps),
            switch_bw: gbps(90),
            ..paper
        }
    }

    /// A DGX-1-like box (§IV-C hardware validation): four discrete GPUs,
    /// NVLink-class 40 GB/s links, no chiplets.
    pub fn dgx1() -> Self {
        let paper = Self::paper_multi_gpu();
        SimConfig {
            topology: Topology::dgx1(),
            sms_per_chiplet: 64,
            l2: CacheConfig {
                bytes: 4 << 20,
                ..paper.l2
            },
            dram_bw: gbps(720),
            intra_chiplet_bw: gbps(2880),
            ring_bw: gbps(2880),
            switch_bw: gbps(40),
            ..paper
        }
    }

    /// Total SMs in the machine.
    pub fn total_sms(&self) -> u32 {
        self.topology.num_nodes() * self.sms_per_chiplet
    }

    /// Sanity-checks derived quantities.
    ///
    /// # Panics
    ///
    /// Panics on inconsistent geometry (zero SMs, non-power-of-two cache
    /// sets, zero bandwidths).
    pub fn validate(&self) {
        assert!(self.sms_per_chiplet > 0, "need at least one SM per chiplet");
        assert!(self.warp_size > 0 && self.warps_per_sm > 0);
        assert!(self.dram_bw > 0.0 && self.intra_chiplet_bw > 0.0);
        assert!(self.ring_bw > 0.0 && self.switch_bw > 0.0);
        assert!(self.page_bytes.is_power_of_two());
        let _ = self.l1.num_sets();
        let _ = self.l2.num_sets();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_config_matches_table3() {
        let c = SimConfig::paper_multi_gpu();
        c.validate();
        assert_eq!(c.total_sms(), 256);
        assert_eq!(c.topology.num_nodes(), 16);
        assert_eq!(c.l2.bytes * u64::from(c.topology.num_nodes()), 16 << 20);
        // 180 GB/s at 1.4 GHz ≈ 128.6 B/cycle.
        assert!((c.dram_bw - 128.57).abs() < 0.1);
    }

    #[test]
    fn monolithic_has_single_node_and_aggregate_bw() {
        let c = SimConfig::monolithic();
        c.validate();
        assert_eq!(c.total_sms(), 256);
        assert_eq!(c.topology.num_nodes(), 1);
        assert!(c.dram_bw > 2000.0);
        assert_eq!(c.l2.bytes, 16 << 20);
    }

    #[test]
    fn fig4_presets_have_four_nodes() {
        for c in [
            SimConfig::fig4_xbar(90),
            SimConfig::fig4_xbar(360),
            SimConfig::fig4_ring(1400),
        ] {
            c.validate();
            assert_eq!(c.topology.num_nodes(), 4);
            assert_eq!(c.total_sms(), 256);
        }
        assert!(SimConfig::fig4_ring(2800).ring_bw > SimConfig::fig4_ring(1400).ring_bw);
    }

    #[test]
    fn cache_geometry() {
        let l1 = SimConfig::paper_multi_gpu().l1;
        assert_eq!(l1.num_sets(), 128);
        assert_eq!(l1.sectors_per_line(), 4);
        let l2 = SimConfig::paper_multi_gpu().l2;
        assert_eq!(l2.num_sets(), 512);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_cache_geometry_panics() {
        let mut c = SimConfig::paper_multi_gpu();
        c.l2.bytes = 3 << 19; // 1.5 MB -> 768 sets
        c.validate();
    }
}
