//! The simulated machine and its event-driven execution engine.
//!
//! [`GpuSystem`] is a thin coordinator over one [`ChipletShard`] per
//! chiplet — each shard owns its SMs, L1s, L2 slice, HBM channel and
//! crossbar (`crate::shard`) — plus the two genuinely shared resources:
//! the inter-chiplet/inter-GPU fabric and the page-home table.
//!
//! The engine is event-driven at warp granularity: each resident warp is a
//! state machine stepping through its loop iterations; every memory
//! instruction is coalesced into 32 B sectors that traverse the hierarchy
//! claiming token-bucket bandwidth at every level, so queueing delay under
//! bandwidth pressure — the paper's central NUMA effect — emerges without
//! cycle-by-cycle iteration.
//!
//! ## Determinism and the threaded driver
//!
//! Every stateful transition (cache lookups, bucket claims, first-touch
//! binding, dispatch) happens in the canonical global `(time, seq)` event
//! order, on the caller thread. What parallelizes ([`GpuSystem::set_threads`],
//! `LADM_SIM_THREADS`) is the *pure* half of each warp step: access
//! generation + coalescing, which depends only on the immutable kernel and
//! the warp's coordinates. The epoch driver snapshots the pending events,
//! fans the missing sector lists out to worker threads by shard, barriers,
//! then drains the epoch serially — so any thread count produces
//! bit-identical [`KernelStats`] (enforced by `tests/determinism.rs`).

use crate::config::SimConfig;
use crate::exec::{KernelExec, ThreadAccess};
use crate::fabric::Fabric;
use crate::mem::AddressSpace;
use crate::shard::{ChipletShard, RemoteRequest, SectorCtx};
use crate::stats::KernelStats;
use ladm_core::par::parallel_map_labeled;
use ladm_core::plan::KernelPlan;
use ladm_core::policies::Policy;
use ladm_core::session::SessionPlan;
use ladm_core::topology::NodeId;
use ladm_obs::{prof, Event as TraceEvent, SectorRoute, TraceSink};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::Arc;

/// Event-heap key with deterministic total order.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct Event {
    pub(crate) time: f64,
    pub(crate) seq: u64,
    pub(crate) warp: u32,
}

impl Eq for Event {}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Event {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.time
            .total_cmp(&other.time)
            .then_with(|| self.seq.cmp(&other.seq))
    }
}

#[derive(Debug, Clone, Copy)]
pub(crate) struct WarpCtx {
    pub(crate) bx: u32,
    pub(crate) by: u32,
    pub(crate) warp: u32,
    pub(crate) iter: u32,
    pub(crate) sm: u32,
    pub(crate) tb: u32,
}

#[derive(Debug, Clone, Copy)]
pub(crate) struct TbCtx {
    live_warps: u32,
    node: u32,
}

/// A warp slot's cached generation result: the instruction count and
/// coalesced sector list for iteration `iter`. Doubles as the
/// iteration-invariant replay cache (the tag is ignored then) and the
/// epoch driver's prefetch target; invalidated when the slot is
/// recycled, with the sector allocation retained.
#[derive(Debug, Default)]
pub(crate) struct SlotCache {
    pub(crate) valid: bool,
    pub(crate) iter: u32,
    pub(crate) instrs: u64,
    pub(crate) sectors: Vec<(u64, bool)>,
}

impl SlotCache {
    pub(crate) fn ready_for(&self, iter: u32, iter_invariant: bool) -> bool {
        self.valid && (iter_invariant || self.iter == iter)
    }
}

/// Dynamic engine state for one `execute` call: warp/threadblock slot
/// tables, the event heap and the per-slot generation caches.
#[derive(Debug, Default)]
pub(crate) struct EngineState {
    pub(crate) warps: Vec<WarpCtx>,
    pub(crate) free_warp_slots: Vec<u32>,
    pub(crate) tbs: Vec<TbCtx>,
    pub(crate) free_tb_slots: Vec<u32>,
    pub(crate) heap: BinaryHeap<Reverse<Event>>,
    pub(crate) seq: u64,
    pub(crate) slots: Vec<SlotCache>,
    pub(crate) access_buf: Vec<ThreadAccess>,
}

/// Hoisted per-kernel constants — the engine loop never clones
/// `SimConfig` or chases `self.cfg` per event.
pub(crate) struct EngineConsts<'a> {
    pub(crate) warps_per_tb: u32,
    pub(crate) sms_per_chiplet: u32,
    pub(crate) trips: u32,
    pub(crate) compute_cycles: f64,
    pub(crate) issue_cost: f64,
    pub(crate) iter_invariant: bool,
    pub(crate) warp_size: u32,
    pub(crate) sector_mask: u64,
    /// Per-allocation `(base, elems, elem_bytes)` so coalescing resolves
    /// addresses from a local table instead of re-deriving the extent
    /// per thread access through `AddressSpace::addr_of`.
    pub(crate) addr_tab: &'a [(u64, u64, u64)],
}

/// Generates one warp iteration's accesses and coalesces them into
/// sorted, deduplicated sectors; returns the instruction count.
///
/// Pure with respect to the machine: reads only the (immutable) kernel
/// and the per-kernel constants, which is what lets the epoch driver
/// compute it on worker threads without perturbing determinism.
pub(crate) fn gen_warp(
    kernel: &dyn KernelExec,
    k: &EngineConsts,
    ctx: WarpCtx,
    access_buf: &mut Vec<ThreadAccess>,
    sectors: &mut Vec<(u64, bool)>,
) -> u64 {
    access_buf.clear();
    kernel.warp_accesses((ctx.bx, ctx.by), ctx.warp, ctx.iter, access_buf);
    sectors.clear();
    // Adjacent-duplicate suppression: consecutive threads of a
    // coalesced site map to long runs of the same sector, and a
    // run collapses to one entry under sort + dedup anyway (the
    // write flag is constant within a site, so OR-merging is a
    // no-op). Skipping repeats up front shrinks the sort input
    // several-fold without changing its outcome.
    let mut last = (u64::MAX, false);
    for a in access_buf.iter() {
        let (base, elems, elem_bytes) = k.addr_tab[usize::from(a.arg)];
        // In-bounds indices (the overwhelmingly common case) skip
        // the u64 division of the wrap-around modulo.
        let idx = if a.idx < elems { a.idx } else { a.idx % elems };
        let addr = base + idx * elem_bytes;
        let entry = (addr & k.sector_mask, a.write);
        if entry != last {
            sectors.push(entry);
            last = entry;
        }
    }
    sectors.sort_unstable();
    sectors.dedup_by(|next, prev| {
        if next.0 == prev.0 {
            prev.1 |= next.1;
            true
        } else {
            false
        }
    });
    // Issue cost: one compute instruction plus one memory
    // instruction per (approximate) access site.
    let mem_instrs = (access_buf.len() as u64)
        .div_ceil(u64::from(k.warp_size))
        .max(u64::from(!access_buf.is_empty()));
    1 + mem_instrs
}

/// Parses `LADM_SIM_THREADS`; unset, unparsable or zero means serial.
fn threads_from_env() -> usize {
    std::env::var("LADM_SIM_THREADS")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .map(|n| n.max(1))
        .unwrap_or(1)
}

/// One session launch's results: the kernel statistics plus the
/// re-placement cost the launch paid *before* running — pages whose
/// committed home changed because the launch replanned (or planned
/// fresh over) an already-placed allocation. Kept outside
/// [`KernelStats`] so the per-kernel statistics stay bit-compatible
/// with the stateless path; re-placement is a session-level effect.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionRunStats {
    /// The kernel's execution statistics (off-node attribution is per
    /// *session allocation*, in pool order, not per kernel argument).
    pub stats: KernelStats,
    /// Already-placed pages whose home the launch's plan moved.
    pub replaced_pages: u64,
    /// `replaced_pages` × page size: the migration traffic a real
    /// machine would pay to honour the replan.
    pub replaced_bytes: u64,
}

/// The simulated hierarchical multi-GPU machine: one shard per chiplet
/// plus the shared fabric and page-home table.
#[derive(Debug)]
pub struct GpuSystem {
    pub(crate) cfg: SimConfig,
    pub(crate) mem: AddressSpace,
    pub(crate) shards: Vec<ChipletShard>,
    fabric: Fabric,
    sink: Option<Arc<dyn TraceSink>>,
    threads: usize,
}

impl GpuSystem {
    /// Builds the machine for a configuration. The engine thread count
    /// defaults to `LADM_SIM_THREADS` (serial when unset); override
    /// with [`GpuSystem::set_threads`].
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails [`SimConfig::validate`].
    pub fn new(cfg: SimConfig) -> Self {
        cfg.validate();
        let nodes = cfg.topology.num_nodes();
        GpuSystem {
            mem: AddressSpace::new(cfg.page_bytes),
            shards: (0..nodes)
                .map(|n| ChipletShard::new(&cfg, NodeId(n)))
                .collect(),
            fabric: Fabric::new(&cfg),
            sink: None,
            threads: threads_from_env(),
            cfg,
        }
    }

    /// The machine configuration.
    pub fn config(&self) -> &SimConfig {
        &self.cfg
    }

    /// The per-chiplet engine shards, in chiplet-id order.
    pub fn shards(&self) -> &[ChipletShard] {
        &self.shards
    }

    /// Sets the engine worker-thread count. `1` (or `0`) runs the
    /// classic serial loop; `n > 1` runs the epoch-prefetch driver on
    /// `n` threads. Results are bit-identical either way.
    pub fn set_threads(&mut self, threads: usize) {
        self.threads = threads.max(1);
    }

    /// The configured engine worker-thread count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Attaches a trace sink: subsequent [`GpuSystem::run`]s report the
    /// planning decision chain, TB dispatch/retire, per-sector routes,
    /// per-level link claims and first-touch resolutions to it. The
    /// disabled path (no sink, or `enabled() == false`) allocates
    /// nothing and leaves [`KernelStats`] bit-identical.
    pub fn set_sink(&mut self, sink: Arc<dyn TraceSink>) {
        self.sink = Some(sink);
    }

    /// Detaches any attached trace sink.
    pub fn clear_sink(&mut self) {
        self.sink = None;
    }

    /// The attached sink, cloned into a local `Arc` and pre-filtered on
    /// `enabled()`. Callers deref the clone into `Option<&dyn TraceSink>`
    /// so the borrow is on the local, not on `self` (the engine needs
    /// `&mut self` while emitting), and the disabled path stays
    /// allocation-free.
    fn active_sink(&self) -> Option<Arc<dyn TraceSink>> {
        self.sink.clone().filter(|s| s.enabled())
    }

    /// Allocates, plans and executes `kernel` under `policy`, returning
    /// the run's statistics. Allocations are created fresh for the kernel
    /// (one per argument) and all caches are flushed first — the paper's
    /// kernel-boundary L2 invalidation.
    pub fn run(&mut self, kernel: &dyn KernelExec, policy: &dyn Policy) -> KernelStats {
        let _prof_kernel = prof::span("kernel");
        let launch = kernel.launch();
        let sink_arc = self.active_sink();
        let sink = sink_arc.as_deref();
        let prof_plan = prof::span("plan");
        let plan = match sink {
            Some(s) => {
                let (plan, decisions) = policy.plan_explained(launch, &self.cfg.topology);
                s.record(TraceEvent::KernelBegin {
                    kernel: launch.kernel.name.to_string(),
                    policy: policy.name().to_string(),
                    grid: launch.grid,
                    schedule: plan.schedule.to_string(),
                });
                for d in decisions {
                    s.record(TraceEvent::ArgDecision {
                        kernel: launch.kernel.name.to_string(),
                        arg: d.arg,
                        name: d.name.to_string(),
                        class: d.class,
                        preference: d.preference.to_string(),
                        bytes: d.bytes,
                        winner: d.winner,
                        page_map: plan.args[d.arg].pages.to_string(),
                        remote_insert: plan.args[d.arg].remote_insert.to_string(),
                    });
                }
                plan
            }
            None => policy.plan(launch, &self.cfg.topology),
        };
        drop(prof_plan);
        {
            let _prof_setup = prof::span("setup_mem");
            self.mem = AddressSpace::new(self.cfg.page_bytes);
            for (i, arg) in launch.kernel.args.iter().enumerate() {
                self.mem.alloc(launch.arg_bytes(i).max(1), arg.elem_bytes);
            }
            self.mem.apply_plan(&plan, &self.cfg.topology);
            self.flush();
        }
        let stats = self.execute(kernel, &plan);
        if let Some(s) = sink {
            s.record(TraceEvent::KernelEnd {
                kernel: launch.kernel.name.to_string(),
                time: stats.cycles,
            });
        }
        stats
    }

    /// Seeds the address space with a session's allocation pool — one
    /// `(bytes, elem_bytes)` allocation per session slot, in slot order
    /// (the shape [`ladm_core::session::PlacementSession::allocations`]
    /// reports) — replacing whatever a previous kernel left. Unlike
    /// [`GpuSystem::run`], subsequent [`GpuSystem::run_session`] calls
    /// do *not* re-seed memory: page homes carry across launches, which
    /// is the whole point of a session.
    pub fn begin_session(&mut self, allocs: &[(u64, u32)]) {
        self.mem = AddressSpace::new(self.cfg.page_bytes);
        for &(bytes, elem_bytes) in allocs {
            self.mem.alloc(bytes.max(1), elem_bytes);
        }
    }

    /// Executes one session launch: applies the plan's page maps to the
    /// fresh/replanned arguments only (adopted arguments keep the page
    /// homes — including first-touch pins and migrations — that earlier
    /// launches established), flushes caches at the kernel boundary,
    /// and runs the kernel with its arguments bound to the session
    /// allocations named by `splan.binding`.
    ///
    /// # Panics
    ///
    /// Panics if [`GpuSystem::begin_session`] has not seeded enough
    /// allocations, or the plan/binding shapes disagree with the
    /// kernel's argument list.
    pub fn run_session(&mut self, kernel: &dyn KernelExec, splan: &SessionPlan) -> SessionRunStats {
        let _prof_kernel = prof::span("kernel");
        let launch = kernel.launch();
        let nargs = launch.kernel.args.len();
        assert_eq!(splan.binding.len(), nargs, "one binding per argument");
        assert_eq!(splan.plan.args.len(), nargs, "one arg plan per argument");
        assert!(
            splan
                .binding
                .iter()
                .all(|&b| b < self.mem.allocations().len()),
            "binding names an allocation the session never seeded"
        );

        let topo = self.cfg.topology;
        let mut replaced_pages = 0u64;
        {
            let _prof_setup = prof::span("setup_mem");
            for (i, prov) in splan.provenance.iter().enumerate() {
                if prov.needs_apply() {
                    replaced_pages +=
                        self.mem
                            .apply_arg_plan(splan.binding[i], &splan.plan.args[i], &topo);
                }
            }
            self.flush();
        }

        // Per-launch migration accounting: the session's table is never
        // rebuilt wholesale, so the space-wide counter is monotonic and
        // this launch's share is a delta.
        let migrations_before = self.mem.migrations();
        let addr_tab: Vec<(u64, u64, u64)> = splan
            .binding
            .iter()
            .map(|&b| {
                let a = &self.mem.allocations()[b];
                (a.base, a.elems, u64::from(a.elem_bytes))
            })
            .collect();
        let attr_args = self.mem.allocations().len();
        let mut stats = self.execute_bound(kernel, &splan.plan, &addr_tab, attr_args);
        stats.page_migrations -= migrations_before;
        SessionRunStats {
            replaced_bytes: replaced_pages * self.cfg.page_bytes,
            replaced_pages,
            stats,
        }
    }

    /// Flushes all caches, fabric queues and DRAM queues (kernel
    /// boundary).
    pub fn flush(&mut self) {
        for shard in &mut self.shards {
            shard.flush();
        }
        self.fabric.reset();
        self.mem.reset_faults();
    }

    /// Core engine: sets up shard queues and resident-warp state, then
    /// drives the event heap — serially, or via the epoch driver when
    /// more than one worker thread is configured.
    fn execute(&mut self, kernel: &dyn KernelExec, plan: &KernelPlan) -> KernelStats {
        let addr_tab: Vec<(u64, u64, u64)> = self
            .mem
            .allocations()
            .iter()
            .map(|a| (a.base, a.elems, u64::from(a.elem_bytes)))
            .collect();
        let attr_args = addr_tab.len();
        self.execute_bound(kernel, plan, &addr_tab, attr_args)
    }

    /// [`GpuSystem::execute`] with an explicit argument→address binding:
    /// `addr_tab[i]` is the `(base, elems, elem_bytes)` the kernel's
    /// argument `i` generates addresses through, and `attr_args` sizes
    /// the off-node attribution (the allocation count — in session mode
    /// the pool can be larger than one kernel's argument list).
    fn execute_bound(
        &mut self,
        kernel: &dyn KernelExec,
        plan: &KernelPlan,
        addr_tab: &[(u64, u64, u64)],
        attr_args: usize,
    ) -> KernelStats {
        let _prof_execute = prof::span("execute");
        let prof_setup = prof::span("setup");
        let launch = kernel.launch();
        let sink_arc = self.active_sink();
        let sink = sink_arc.as_deref();
        let topo = self.cfg.topology;
        let warp_size = self.cfg.warp_size;
        let threads_per_tb = launch.threads_per_tb() as u32;
        let warps_per_tb = threads_per_tb.div_ceil(warp_size).max(1);
        let trips = kernel.trips().max(1);
        let k = EngineConsts {
            warps_per_tb,
            sms_per_chiplet: self.cfg.sms_per_chiplet,
            trips,
            compute_cycles: (self.cfg.base_compute_cycles
                * u64::from(kernel.compute_intensity().max(1))) as f64,
            issue_cost: 1.0 / self.cfg.issue_per_cycle,
            // When the kernel's access pattern does not depend on the
            // loop iteration, each warp's coalesced sector list is
            // generated once and replayed on later trips.
            iter_invariant: trips > 1 && kernel.iter_invariant(),
            warp_size,
            sector_mask: !(u64::from(self.cfg.l1.sector_bytes) - 1),
            addr_tab,
        };

        let tb_slots_per_sm = self
            .cfg
            .max_tbs_per_sm
            .min(self.cfg.warps_per_sm / warps_per_tb)
            .max(1);
        let warp_budget = self.cfg.warps_per_sm.max(warps_per_tb);
        for shard in &mut self.shards {
            shard.begin_kernel(attr_args, tb_slots_per_sm, warp_budget);
        }
        // Threadblock queues per shard, in dispatch order — row-major
        // for classic schedules, curve order for swizzled ones. Shared
        // with the oracle via `TbMap::dispatch_order` so the two
        // machines cannot disagree on dispatch.
        for (bx, by) in plan.schedule.dispatch_order(launch.grid) {
            let node = plan.schedule.node_of_tb(bx, by, launch.grid, &topo);
            self.shards[node.0 as usize].queue.push_back((bx, by));
        }

        let mut eng = EngineState::default();
        eng.access_buf.reserve(256);
        for node in 0..topo.num_nodes() {
            self.dispatch_node(&mut eng, node, 0.0, &k, sink);
        }
        drop(prof_setup);

        if self.threads > 1 {
            let threads = self.threads;
            // The conservative-lookahead drain executes local-only event
            // prefixes on the shards concurrently. It is sound only when
            // every cross-thread effect is excluded from the parallel
            // window: no trace sink (events must be emitted in canonical
            // interleaved order), no reactive migration (remote accesses
            // mutate the shared page table), and a positive horizon
            // (`min(compute block, minimum cross-shard link latency)`).
            // Everything else falls back to the epoch-prefetch driver —
            // as does the drain itself, mid-kernel, when enough
            // consecutive rounds execute nothing in parallel (see
            // `drain::DEMOTE_AFTER`).
            let delta = crate::horizon::lookahead(&self.cfg)
                .map(|l| l.min(k.compute_cycles))
                .filter(|&d| d > 0.0);
            match delta {
                Some(delta) if sink.is_none() && self.cfg.migration_threshold == 0 => {
                    self.drain_conservative(&mut eng, kernel, &k, threads, delta);
                }
                _ => self.run_epochs(&mut eng, kernel, &k, sink, threads),
            }
        } else {
            let _prof_drain = prof::span("drain_serial");
            while self.step(&mut eng, kernel, &k, sink) {}
        }

        for shard in &self.shards {
            debug_assert!(shard.queue.is_empty(), "all threadblocks must have run");
        }

        // Whole-machine totals: merge shard slices in chiplet-id order
        // (every merge operator is order-independent — see
        // `KernelStats::merge_shard`), truncate the off-node attribution
        // to the highest watermark, and fold in the coordinator-owned
        // counters (fabric traffic, page faults, migrations).
        let _prof_merge = prof::span("stats_merge");
        let mut stats = KernelStats {
            offnode_by_arg: vec![0; attr_args],
            ..KernelStats::default()
        };
        let mut remote_args = 0usize;
        for shard in &self.shards {
            stats.merge_shard(shard.stats());
            remote_args = remote_args.max(shard.remote_args);
        }
        // Match the lazily-grown attribution vector of the reference
        // engine: report only up to the highest arg with off-node traffic.
        stats.offnode_by_arg.truncate(remote_args);
        stats.inter_chiplet_bytes = self.fabric.inter_chiplet_bytes();
        stats.inter_gpu_bytes = self.fabric.inter_gpu_bytes();
        stats.page_faults = self.mem.page_faults();
        stats.page_migrations = self.mem.migrations();
        stats
    }

    /// Dispatches threadblocks from shard `node`'s queue onto its SMs
    /// until no SM has room for a whole block.
    pub(crate) fn dispatch_node(
        &mut self,
        eng: &mut EngineState,
        node: u32,
        now: f64,
        k: &EngineConsts,
        sink: Option<&dyn TraceSink>,
    ) {
        let sm_base = node * k.sms_per_chiplet;
        let shard = &mut self.shards[node as usize];
        'outer: while !shard.queue.is_empty() {
            // First SM on the node with room for a whole block.
            let mut chosen = None;
            for i in 0..k.sms_per_chiplet {
                let s = &shard.sms[i as usize];
                if s.free_tb_slots > 0 && s.free_warps >= k.warps_per_tb {
                    chosen = Some(i);
                    break;
                }
            }
            let Some(local) = chosen else { break 'outer };
            let sm = sm_base + local;
            let (bx, by) = shard.queue.pop_front().expect("checked non-empty");
            let sm_state = &mut shard.sms[local as usize];
            sm_state.free_tb_slots -= 1;
            sm_state.free_warps -= k.warps_per_tb;
            let tb_idx = match eng.free_tb_slots.pop() {
                Some(i) => {
                    eng.tbs[i as usize] = TbCtx {
                        live_warps: k.warps_per_tb,
                        node,
                    };
                    i
                }
                None => {
                    eng.tbs.push(TbCtx {
                        live_warps: k.warps_per_tb,
                        node,
                    });
                    (eng.tbs.len() - 1) as u32
                }
            };
            shard.stats.threadblocks += 1;
            if let Some(s) = sink {
                s.record(TraceEvent::TbDispatch {
                    time: now,
                    bx,
                    by,
                    node: node as u16,
                    sm,
                });
            }
            for w in 0..k.warps_per_tb {
                let ctx = WarpCtx {
                    bx,
                    by,
                    warp: w,
                    iter: 0,
                    sm,
                    tb: tb_idx,
                };
                let warp_idx = match eng.free_warp_slots.pop() {
                    Some(i) => {
                        eng.warps[i as usize] = ctx;
                        eng.slots[i as usize].valid = false;
                        i
                    }
                    None => {
                        eng.warps.push(ctx);
                        eng.slots.push(SlotCache::default());
                        (eng.warps.len() - 1) as u32
                    }
                };
                eng.seq += 1;
                heap_push(eng, now, warp_idx);
            }
        }
    }

    /// Pops and resolves one event in canonical global order. Returns
    /// `false` when the heap is empty.
    pub(crate) fn step(
        &mut self,
        eng: &mut EngineState,
        kernel: &dyn KernelExec,
        k: &EngineConsts,
        sink: Option<&dyn TraceSink>,
    ) -> bool {
        let Some(Reverse(ev)) = eng.heap.pop() else {
            return false;
        };
        prof::count("engine.heap_pop", 1);
        let now = ev.time;
        let ctx = eng.warps[ev.warp as usize];
        let node = ctx.sm / k.sms_per_chiplet;
        let shard = &mut self.shards[node as usize];
        // Per-shard completion watermark; the merge takes the max.
        shard.stats.cycles = shard.stats.cycles.max(now);

        if ctx.iter >= k.trips {
            // Warp retired.
            eng.free_warp_slots.push(ev.warp);
            let tb = &mut eng.tbs[ctx.tb as usize];
            tb.live_warps -= 1;
            if tb.live_warps == 0 {
                let tb_node = tb.node;
                eng.free_tb_slots.push(ctx.tb);
                let sm_state = &mut shard.sms[(ctx.sm % k.sms_per_chiplet) as usize];
                sm_state.free_tb_slots += 1;
                sm_state.free_warps += k.warps_per_tb;
                if let Some(s) = sink {
                    s.record(TraceEvent::TbRetire {
                        time: now,
                        bx: ctx.bx,
                        by: ctx.by,
                        node: tb_node as u16,
                        sm: ctx.sm,
                    });
                }
                self.dispatch_node(eng, tb_node, now, k, sink);
            }
            return true;
        }

        // This iteration's accesses: replayed from the slot cache (filled
        // by the epoch prefetch or an invariant earlier trip), or
        // generated inline.
        let EngineState {
            slots, access_buf, ..
        } = eng;
        let slot = &mut slots[ev.warp as usize];
        if !slot.ready_for(ctx.iter, k.iter_invariant) {
            let _prof_gen = prof::span("gen_inline");
            slot.instrs = gen_warp(kernel, k, ctx, access_buf, &mut slot.sectors);
            slot.iter = ctx.iter;
            slot.valid = true;
        }
        let instrs = slot.instrs;

        shard.stats.warp_instructions += instrs;
        let sm_state = &mut shard.sms[(ctx.sm % k.sms_per_chiplet) as usize];
        let issue = now.max(sm_state.next_issue);
        sm_state.next_issue = issue + k.issue_cost * instrs as f64;

        // Route every sector; the warp blocks on the slowest.
        let mut done = issue + k.compute_cycles;
        for &(sector, write) in slot.sectors.iter() {
            let t = self.route_sector(issue, ctx.sm, sector, write, sink);
            done = done.max(t);
        }

        eng.warps[ev.warp as usize].iter += 1;
        eng.seq += 1;
        heap_push(eng, done, ev.warp);
        true
    }

    /// Epoch-prefetch driver: between barriers, worker threads compute
    /// the pure generation results (sector lists) for every pending
    /// event that needs one, grouped by shard; the barrier joins them
    /// into the slot caches; then the epoch's snapshot is drained
    /// serially in canonical order (events pushed mid-drain that pop
    /// early simply fall back to inline generation). No shard state is
    /// touched off the caller thread, so results are bit-identical to
    /// the serial loop for any thread count.
    pub(crate) fn run_epochs(
        &mut self,
        eng: &mut EngineState,
        kernel: &dyn KernelExec,
        k: &EngineConsts,
        sink: Option<&dyn TraceSink>,
        threads: usize,
    ) {
        let nodes = self.shards.len();
        let mut epoch: u32 = 0;
        while let Some(&Reverse(head)) = eng.heap.peek() {
            let head_time = head.time;
            // Snapshot: every pending warp event that will need a fresh
            // sector list for the iteration it is about to execute.
            let prof_snapshot = prof::span("snapshot");
            let mut tasks: Vec<Vec<(u32, WarpCtx)>> = vec![Vec::new(); nodes];
            let mut gen_tasks = 0u32;
            for &Reverse(ev) in eng.heap.iter() {
                let ctx = eng.warps[ev.warp as usize];
                if ctx.iter >= k.trips {
                    continue;
                }
                if eng.slots[ev.warp as usize].ready_for(ctx.iter, k.iter_invariant) {
                    continue;
                }
                tasks[(ctx.sm / k.sms_per_chiplet) as usize].push((ev.warp, ctx));
                gen_tasks += 1;
            }
            // Heap iteration order is layout-dependent; sort so each
            // worker job's content is reproducible run to run.
            for t in &mut tasks {
                t.sort_unstable_by_key(|&(slot, _)| slot);
            }
            drop(prof_snapshot);
            if let Some(s) = sink {
                s.record(TraceEvent::EpochBarrier {
                    time: head_time,
                    epoch,
                    pending: eng.heap.len() as u32,
                    gen_tasks,
                });
            }
            if gen_tasks > 0 {
                // The fan-out span covers job distribution, worker
                // execution AND the coordinator's barrier wait (the
                // join); per-shard busy time lands in the
                // `shardNN.gen_ns` counters recorded by the workers, so
                // barrier idle = workers × fanout wall − Σ busy.
                let prof_fanout = prof::span("gen_fanout");
                let produced = parallel_map_labeled(
                    nodes,
                    threads,
                    |i| format!("shard {i} gen (epoch {epoch})"),
                    |i| {
                        let _prof_worker = prof::span("gen_worker");
                        let busy = prof::profiling().then(std::time::Instant::now);
                        let mut access_buf: Vec<ThreadAccess> = Vec::with_capacity(256);
                        let out = tasks[i]
                            .iter()
                            .map(|&(slot, ctx)| {
                                let mut sectors: Vec<(u64, bool)> = Vec::with_capacity(64);
                                let instrs =
                                    gen_warp(kernel, k, ctx, &mut access_buf, &mut sectors);
                                (slot, ctx.iter, instrs, sectors)
                            })
                            .collect::<Vec<_>>();
                        if let Some(t0) = busy {
                            prof::count_named(
                                format!("shard{i:02}.gen_ns"),
                                t0.elapsed().as_nanos() as u64,
                            );
                            prof::count_named(format!("shard{i:02}.gen_tasks"), out.len() as u64);
                        }
                        out
                    },
                );
                drop(prof_fanout);
                let _prof_join = prof::span("join");
                for per_shard in produced {
                    for (slot_idx, iter, instrs, sectors) in per_shard {
                        let slot = &mut eng.slots[slot_idx as usize];
                        slot.valid = true;
                        slot.iter = iter;
                        slot.instrs = instrs;
                        slot.sectors = sectors;
                    }
                }
            }
            // Drain exactly this epoch's snapshot in canonical order.
            let _prof_drain = prof::span("drain");
            let drain = eng.heap.len();
            for _ in 0..drain {
                if !self.step(eng, kernel, k, sink) {
                    break;
                }
            }
            epoch += 1;
        }
    }

    /// Drives one 32 B sector through the hierarchy starting at `t`;
    /// returns its completion time.
    ///
    /// The requester shard handles the L1, crossbar and (when the home
    /// is local) the L2/DRAM service; the shared page-home table
    /// resolves ownership; remote-homed sectors cross the coordinator's
    /// fabric as a [`RemoteRequest`] answered by the home shard
    /// (`ChipletShard::serve_remote`). When `sink` is present, the
    /// terminal service point is reported as one
    /// [`ladm_obs::Event::Sector`] (plus first-touch and link claims
    /// along the way).
    fn route_sector(
        &mut self,
        t: f64,
        sm: u32,
        addr: u64,
        write: bool,
        sink: Option<&dyn TraceSink>,
    ) -> f64 {
        let topo = self.cfg.topology;
        let node = NodeId(sm / self.cfg.sms_per_chiplet);
        let sm_local = (sm % self.cfg.sms_per_chiplet) as usize;
        let nid = node.0 as usize;
        let l2_lat = self.cfg.l2.latency as f64;
        let ctx = SectorCtx {
            issue_t: t,
            requester: node,
            page: addr / self.cfg.page_bytes,
            bytes: self.cfg.l1.sector_bytes,
            write,
        };

        // L1 (write-through, no write-allocate) and the SM→L2 crossbar
        // hop, both on the requesting shard.
        let t = {
            let rs = &mut self.shards[nid];
            if rs.l1_access(sm_local, addr, write, sink, &ctx) {
                return t + rs.l1_latency();
            }
            rs.xbar_hop(t + rs.l1_latency(), sink)
        };

        // Single flat-table lookup in the shared page-home table: home
        // node, owning arg and insertion policy in one step.
        let home = self.mem.resolve(addr, node, &topo);
        let mut t = t;
        if home.faulted {
            t += self.cfg.page_fault_cycles as f64;
            if let Some(s) = sink {
                s.record(TraceEvent::FirstTouch {
                    time: ctx.issue_t,
                    page: ctx.page,
                    node: home.node.0 as u16,
                });
            }
        }

        if home.node == node {
            // LOCAL-LOCAL: entirely within the requester shard.
            return self.shards[nid].local_access(t, addr, write, sink, &ctx);
        }

        let offgpu = !topo.same_gpu(home.node, node);
        let arg = home.arg as usize;
        self.shards[nid].raise_arg_watermark(arg);
        // Reactive migration (opt-in): enough consecutive accesses
        // from this node pull the whole page across the fabric; the
        // triggering request stalls for the transfer and is then
        // served locally.
        if self.cfg.migration_threshold > 0
            && self
                .mem
                .record_remote_access(addr, node, self.cfg.migration_threshold)
        {
            ctx.emit(sink, SectorRoute::Migrated, home.node);
            let t =
                self.fabric
                    .route_traced(t + l2_lat, home.node, node, self.cfg.page_bytes, sink);
            return self.shards[nid].migrate_in(t, sm_local, addr, write, sink, &ctx);
        }

        if write {
            // Write data travels to the home shard; the local copy (if
            // any) is invalidated. Acks are free.
            let rs = &mut self.shards[nid];
            rs.note_offnode(arg, offgpu);
            rs.invalidate_l2(addr);
            let t =
                self.fabric
                    .route_traced(t + l2_lat, node, home.node, u64::from(ctx.bytes), sink);
            let req = RemoteRequest {
                addr,
                write: true,
                t,
                insert: home.remote_insert,
            };
            self.shards[home.node.0 as usize]
                .serve_remote(&req, sink, &ctx)
                .t
        } else {
            // LOCAL-REMOTE: the dynamically-shared L2 checks the local
            // partition before going remote (remote caching, [51]).
            if self.cfg.remote_caching {
                if let Some(done) =
                    self.shards[nid].probe_remote_cached(t, addr, home.node, sink, &ctx)
                {
                    return done;
                }
            }
            // The request really leaves the chiplet now: header to the
            // home shard, REMOTE-LOCAL service there, data reply back.
            self.shards[nid].note_offnode(arg, offgpu);
            let t = self
                .fabric
                .route_traced(t + l2_lat, node, home.node, 8, sink);
            let req = RemoteRequest {
                addr,
                write: false,
                t,
                insert: home.remote_insert,
            };
            let reply = self.shards[home.node.0 as usize].serve_remote(&req, sink, &ctx);
            let t = self
                .fabric
                .route_traced(reply.t, home.node, node, u64::from(ctx.bytes), sink);
            self.shards[nid].accept_reply(sm_local, addr, self.cfg.remote_caching);
            t
        }
    }
}

/// Pushes the next event for `warp` at `time` (assumes `eng.seq` was
/// already advanced by the caller).
fn heap_push(eng: &mut EngineState, time: f64, warp: u32) {
    prof::count("engine.heap_push", 1);
    let seq = eng.seq;
    eng.heap.push(Reverse(Event { time, seq, warp }));
}

#[cfg(test)]
mod tests {
    use super::*;
    use ladm_core::analysis::GridShape;
    use ladm_core::expr::{Expr, Var};
    use ladm_core::launch::{ArgStatic, KernelStatic, LaunchInfo};
    use ladm_core::policies::{BaselineRr, KernelWide, Lasp};

    /// Minimal vecadd-style kernel: each thread reads a[i], b[i], writes
    /// c[i]; i = bx*bdx + tx.
    #[derive(Debug)]
    struct VecAdd {
        launch: LaunchInfo,
    }

    impl VecAdd {
        fn new(blocks: u32, bdx: u32) -> Self {
            let idx = (Expr::var(Var::Bx) * Expr::var(Var::Bdx) + Expr::var(Var::Tx)).to_poly();
            let n = u64::from(blocks) * u64::from(bdx);
            let kernel = KernelStatic {
                name: "vecadd",
                grid_shape: GridShape::OneD,
                args: vec![
                    ArgStatic::read("a", 4, idx.clone()),
                    ArgStatic::read("b", 4, idx.clone()),
                    ArgStatic::write("c", 4, idx),
                ],
            };
            VecAdd {
                launch: LaunchInfo::new(kernel, (blocks, 1), (bdx, 1), vec![n, n, n]),
            }
        }
    }

    impl KernelExec for VecAdd {
        fn launch(&self) -> &LaunchInfo {
            &self.launch
        }
        fn trips(&self) -> u32 {
            1
        }
        fn warp_accesses(
            &self,
            tb: (u32, u32),
            warp: u32,
            _iter: u32,
            out: &mut Vec<ThreadAccess>,
        ) {
            let bdx = self.launch.block.0;
            for lane in 0..32u32 {
                let t = warp * 32 + lane;
                if t >= bdx {
                    break;
                }
                let i = u64::from(tb.0) * u64::from(bdx) + u64::from(t);
                out.push(ThreadAccess::load(0, i));
                out.push(ThreadAccess::load(1, i));
                out.push(ThreadAccess::store(2, i));
            }
        }
    }

    #[test]
    fn vecadd_runs_to_completion() {
        let mut sys = GpuSystem::new(SimConfig::paper_multi_gpu());
        let kernel = VecAdd::new(256, 128);
        let stats = sys.run(&kernel, &BaselineRr::new());
        assert_eq!(stats.threadblocks, 256);
        assert!(stats.cycles > 0.0);
        assert!(stats.warp_instructions > 0);
        // Every element read twice + written once; sectors flowed.
        assert!(stats.l1_misses > 0);
    }

    #[test]
    fn monolithic_has_no_offchip_traffic() {
        let mut sys = GpuSystem::new(SimConfig::monolithic());
        let kernel = VecAdd::new(128, 128);
        let stats = sys.run(&kernel, &KernelWide::new());
        assert_eq!(stats.sectors_offnode, 0);
        assert_eq!(stats.inter_gpu_bytes, 0);
        assert_eq!(stats.offchip_fraction(), 0.0);
    }

    #[test]
    fn ladm_vecadd_is_fully_local() {
        // LASP's aligned batches + interleaved pages keep every vecadd
        // access on-node (Table I page-alignment row).
        let mut sys = GpuSystem::new(SimConfig::paper_multi_gpu());
        let kernel = VecAdd::new(512, 128);
        let stats = sys.run(&kernel, &Lasp::ladm());
        assert_eq!(
            stats.sectors_offnode,
            0,
            "off-chip fraction = {}",
            stats.offchip_fraction()
        );
    }

    #[test]
    fn baseline_rr_generates_offchip_traffic() {
        let mut sys = GpuSystem::new(SimConfig::paper_multi_gpu());
        let kernel = VecAdd::new(512, 128);
        let stats = sys.run(&kernel, &BaselineRr::new());
        // One-page granularity placement vs one-block batches: most
        // accesses go off-node on a 16-node machine.
        assert!(
            stats.offchip_fraction() > 0.5,
            "off-chip fraction = {}",
            stats.offchip_fraction()
        );
    }

    #[test]
    fn ladm_is_faster_than_baseline_on_vecadd() {
        let kernel = VecAdd::new(512, 128);
        let mut sys = GpuSystem::new(SimConfig::paper_multi_gpu());
        let base = sys.run(&kernel, &BaselineRr::new());
        let ladm = sys.run(&kernel, &Lasp::ladm());
        assert!(
            ladm.cycles < base.cycles,
            "LADM {} vs baseline {}",
            ladm.cycles,
            base.cycles
        );
    }

    #[test]
    fn stats_conservation_invariants() {
        let mut sys = GpuSystem::new(SimConfig::paper_multi_gpu());
        let kernel = VecAdd::new(128, 128);
        let stats = sys.run(&kernel, &BaselineRr::new());
        // Off-node sectors are a subset of L2-level sectors.
        assert!(stats.sectors_offnode <= stats.l1_misses);
        assert!(stats.sectors_offgpu <= stats.sectors_offnode);
        // Each traffic class has hits <= accesses.
        assert!(stats.l2_local_local.hits <= stats.l2_local_local.accesses);
        assert!(stats.l2_local_remote.hits <= stats.l2_local_remote.accesses);
        assert!(stats.l2_remote_local.hits <= stats.l2_remote_local.accesses);
        // LOCAL-LOCAL + LOCAL-REMOTE lookups == L2-level read+write sectors.
        let lookups = stats.l2_local_local.accesses + stats.l2_local_remote.accesses;
        // Writes to remote homes skip the LOCAL-REMOTE lookup.
        assert!(lookups <= stats.l1_misses);
    }

    #[test]
    fn tracing_records_pipeline_events_without_changing_stats() {
        use ladm_obs::{Event, RecordingSink};

        let kernel = VecAdd::new(64, 128);
        let mut sys = GpuSystem::new(SimConfig::paper_multi_gpu());
        let baseline = sys.run(&kernel, &Lasp::ladm());

        let sink = Arc::new(RecordingSink::new());
        sys.set_sink(sink.clone());
        let traced = sys.run(&kernel, &Lasp::ladm());
        assert_eq!(
            format!("{traced:?}"),
            format!("{baseline:?}"),
            "tracing must leave KernelStats bit-identical"
        );

        let events = sink.take_events();
        assert_eq!(events[0].name(), "kernel_begin");
        assert_eq!(events.last().unwrap().name(), "kernel_end");
        let count = |n: &str| events.iter().filter(|e| e.name() == n).count();
        assert_eq!(count("arg_decision"), 3, "one decision per argument");
        assert_eq!(count("tb_dispatch"), 64);
        assert_eq!(count("tb_retire"), 64);
        assert!(count("sector") > 0, "sector routes must be reported");
        assert!(count("link_transfer") > 0, "link claims must be reported");
        // Dispatch/retire pair up on the same (bx, node, sm).
        let dispatched: Vec<(u32, u16, u32)> = events
            .iter()
            .filter_map(|e| match e {
                Event::TbDispatch { bx, node, sm, .. } => Some((*bx, *node, *sm)),
                _ => None,
            })
            .collect();
        for e in &events {
            if let Event::TbRetire { bx, node, sm, .. } = e {
                assert!(dispatched.contains(&(*bx, *node, *sm)));
            }
        }

        sys.clear_sink();
        sys.run(&kernel, &Lasp::ladm());
        assert!(sink.is_empty(), "cleared sink must see nothing");
    }

    #[test]
    fn first_touch_faults_are_counted() {
        let mut sys = GpuSystem::new(SimConfig::paper_multi_gpu());
        let kernel = VecAdd::new(128, 128);
        let stats = sys.run(&kernel, &ladm_core::policies::BatchFt::new());
        assert!(stats.page_faults > 0);
    }

    #[test]
    fn threaded_engine_is_bit_identical() {
        let kernel = VecAdd::new(256, 128);
        let mut serial = GpuSystem::new(SimConfig::paper_multi_gpu());
        serial.set_threads(1);
        let base = serial.run(&kernel, &BaselineRr::new());
        for threads in [2, 4, 8] {
            let mut sys = GpuSystem::new(SimConfig::paper_multi_gpu());
            sys.set_threads(threads);
            let stats = sys.run(&kernel, &BaselineRr::new());
            assert_eq!(
                format!("{stats:?}"),
                format!("{base:?}"),
                "threads={threads} must be bit-identical to serial"
            );
        }
    }

    #[test]
    fn threaded_trace_adds_only_epoch_barriers() {
        use ladm_obs::RecordingSink;

        let kernel = VecAdd::new(64, 128);
        let mut sys = GpuSystem::new(SimConfig::paper_multi_gpu());
        sys.set_threads(1);
        let sink = Arc::new(RecordingSink::new());
        sys.set_sink(sink.clone());
        sys.run(&kernel, &Lasp::ladm());
        let serial = sink.take_events();

        sys.set_threads(4);
        sys.run(&kernel, &Lasp::ladm());
        let threaded = sink.take_events();

        let barriers = threaded
            .iter()
            .filter(|e| e.name() == "epoch_barrier")
            .count();
        assert!(barriers > 0, "threaded runs report epoch barriers");
        let filtered: Vec<_> = threaded
            .into_iter()
            .filter(|e| e.name() != "epoch_barrier")
            .collect();
        assert_eq!(
            filtered, serial,
            "threaded trace differs from serial only by barrier markers"
        );
    }

    #[test]
    fn shards_expose_per_chiplet_stats() {
        let kernel = VecAdd::new(256, 128);
        let mut sys = GpuSystem::new(SimConfig::paper_multi_gpu());
        let total = sys.run(&kernel, &Lasp::ladm());
        let shard_tbs: u64 = sys.shards().iter().map(|s| s.stats().threadblocks).sum();
        assert_eq!(shard_tbs, total.threadblocks);
        let busy = sys
            .shards()
            .iter()
            .filter(|s| s.stats().cycles > 0.0)
            .count();
        assert!(busy > 1, "work spread across chiplets, got {busy}");
        assert!(sys
            .shards()
            .iter()
            .all(|s| s.stats().cycles <= total.cycles));
    }

    #[test]
    fn env_thread_count_is_parsed_and_clamped() {
        assert_eq!(threads_from_env().max(1), threads_from_env());
        let mut sys = GpuSystem::new(SimConfig::paper_multi_gpu());
        sys.set_threads(0);
        assert_eq!(sys.threads(), 1, "zero clamps to serial");
        sys.set_threads(8);
        assert_eq!(sys.threads(), 8);
    }
}
