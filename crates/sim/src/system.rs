//! The simulated machine and its event-driven execution engine.
//!
//! [`GpuSystem`] assembles SM-private L1s, per-chiplet L2 partitions, HBM
//! channels, the hierarchical fabric and the page table, and executes one
//! [`KernelExec`] under one [`KernelPlan`].
//!
//! The engine is event-driven at warp granularity: each resident warp is a
//! state machine stepping through its loop iterations; every memory
//! instruction is coalesced into 32 B sectors that traverse the hierarchy
//! claiming token-bucket bandwidth at every level, so queueing delay under
//! bandwidth pressure — the paper's central NUMA effect — emerges without
//! cycle-by-cycle iteration.

use crate::bw::TokenBucket;
use crate::cache::{Lookup, SectoredCache};
use crate::config::SimConfig;
use crate::exec::{KernelExec, ThreadAccess};
use crate::fabric::Fabric;
use crate::mem::AddressSpace;
use crate::stats::KernelStats;
use ladm_core::plan::{KernelPlan, RemoteInsert};
use ladm_core::policies::Policy;
use ladm_core::topology::NodeId;
use ladm_obs::{Event as TraceEvent, LinkLevel, SectorRoute, TraceSink};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};
use std::sync::Arc;

/// Event-heap key with deterministic total order.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Event {
    time: f64,
    seq: u64,
    warp: u32,
}

impl Eq for Event {}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Event {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.time
            .total_cmp(&other.time)
            .then_with(|| self.seq.cmp(&other.seq))
    }
}

#[derive(Debug, Clone, Copy)]
struct WarpCtx {
    bx: u32,
    by: u32,
    warp: u32,
    iter: u32,
    sm: u32,
    tb: u32,
}

#[derive(Debug, Clone, Copy)]
struct TbCtx {
    live_warps: u32,
    node: u32,
}

#[derive(Debug, Clone, Copy, Default)]
struct SmState {
    free_tb_slots: u32,
    free_warps: u32,
    next_issue: f64,
}

/// A warp slot's cached `(instruction count, coalesced sectors)` for
/// iteration-invariant replay; `None` until the first trip generates it.
type CachedIteration = Option<(u64, Vec<(u64, bool)>)>;

/// The simulated hierarchical multi-GPU machine.
#[derive(Debug)]
pub struct GpuSystem {
    cfg: SimConfig,
    mem: AddressSpace,
    l1: Vec<SectoredCache>,
    l2: Vec<SectoredCache>,
    dram: Vec<TokenBucket>,
    fabric: Fabric,
    sink: Option<Arc<dyn TraceSink>>,
}

impl GpuSystem {
    /// Builds the machine for a configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails [`SimConfig::validate`].
    pub fn new(cfg: SimConfig) -> Self {
        cfg.validate();
        let total_sms = cfg.total_sms() as usize;
        let nodes = cfg.topology.num_nodes() as usize;
        GpuSystem {
            mem: AddressSpace::new(cfg.page_bytes),
            l1: (0..total_sms)
                .map(|_| SectoredCache::new(&cfg.l1))
                .collect(),
            l2: (0..nodes).map(|_| SectoredCache::new(&cfg.l2)).collect(),
            dram: (0..nodes).map(|_| TokenBucket::new(cfg.dram_bw)).collect(),
            fabric: Fabric::new(&cfg),
            cfg,
            sink: None,
        }
    }

    /// The machine configuration.
    pub fn config(&self) -> &SimConfig {
        &self.cfg
    }

    /// Attaches a trace sink: subsequent [`GpuSystem::run`]s report the
    /// planning decision chain, TB dispatch/retire, per-sector routes,
    /// per-level link claims and first-touch resolutions to it. The
    /// disabled path (no sink, or `enabled() == false`) allocates
    /// nothing and leaves [`KernelStats`] bit-identical.
    pub fn set_sink(&mut self, sink: Arc<dyn TraceSink>) {
        self.sink = Some(sink);
    }

    /// Detaches any attached trace sink.
    pub fn clear_sink(&mut self) {
        self.sink = None;
    }

    /// Allocates, plans and executes `kernel` under `policy`, returning
    /// the run's statistics. Allocations are created fresh for the kernel
    /// (one per argument) and all caches are flushed first — the paper's
    /// kernel-boundary L2 invalidation.
    pub fn run(&mut self, kernel: &dyn KernelExec, policy: &dyn Policy) -> KernelStats {
        let launch = kernel.launch();
        let sink_arc = self.sink.clone();
        let sink = sink_arc.as_deref().filter(|s| s.enabled());
        let plan = match sink {
            Some(s) => {
                let (plan, decisions) = policy.plan_explained(launch, &self.cfg.topology);
                s.record(TraceEvent::KernelBegin {
                    kernel: launch.kernel.name.to_string(),
                    policy: policy.name().to_string(),
                    grid: launch.grid,
                    schedule: plan.schedule.to_string(),
                });
                for d in decisions {
                    s.record(TraceEvent::ArgDecision {
                        kernel: launch.kernel.name.to_string(),
                        arg: d.arg,
                        name: d.name.to_string(),
                        class: d.class,
                        preference: d.preference.to_string(),
                        bytes: d.bytes,
                        winner: d.winner,
                        page_map: plan.args[d.arg].pages.to_string(),
                        remote_insert: plan.args[d.arg].remote_insert.to_string(),
                    });
                }
                plan
            }
            None => policy.plan(launch, &self.cfg.topology),
        };
        self.mem = AddressSpace::new(self.cfg.page_bytes);
        for (i, arg) in launch.kernel.args.iter().enumerate() {
            self.mem.alloc(launch.arg_bytes(i).max(1), arg.elem_bytes);
        }
        self.mem.apply_plan(&plan, &self.cfg.topology);
        self.flush();
        let stats = self.execute(kernel, &plan);
        if let Some(s) = sink {
            s.record(TraceEvent::KernelEnd {
                kernel: launch.kernel.name.to_string(),
                time: stats.cycles,
            });
        }
        stats
    }

    /// Flushes all caches, fabric queues and DRAM queues (kernel
    /// boundary).
    pub fn flush(&mut self) {
        for c in &mut self.l1 {
            c.flush();
        }
        for c in &mut self.l2 {
            c.flush();
        }
        for d in &mut self.dram {
            d.reset();
        }
        self.fabric.reset();
        self.mem.reset_faults();
    }

    fn sm_node(&self, sm: u32) -> NodeId {
        NodeId(sm / self.cfg.sms_per_chiplet)
    }

    /// Core engine loop.
    fn execute(&mut self, kernel: &dyn KernelExec, plan: &KernelPlan) -> KernelStats {
        let launch = kernel.launch();
        // The Arc is cloned into a local so `&dyn TraceSink` borrows the
        // local, not `self` (route_sector needs `&mut self`).
        let sink_arc = self.sink.clone();
        let sink = sink_arc.as_deref().filter(|s| s.enabled());
        // Hoisted scalar copies of the configuration — the engine loop
        // never clones `SimConfig` or chases `self.cfg` per event.
        let topo = self.cfg.topology;
        let warp_size = self.cfg.warp_size;
        let sms_per_chiplet = self.cfg.sms_per_chiplet;
        let (gdx, gdy) = launch.grid;
        let threads_per_tb = launch.threads_per_tb() as u32;
        let warps_per_tb = threads_per_tb.div_ceil(warp_size).max(1);
        let trips = kernel.trips().max(1);
        let compute_cycles =
            (self.cfg.base_compute_cycles * u64::from(kernel.compute_intensity().max(1))) as f64;
        let issue_cost = 1.0 / self.cfg.issue_per_cycle;

        // Per-allocation (base, elems, elem_bytes) so coalescing resolves
        // addresses from a local table instead of re-deriving the extent
        // per thread access through `AddressSpace::addr_of`.
        let addr_tab: Vec<(u64, u64, u64)> = self
            .mem
            .allocations()
            .iter()
            .map(|a| (a.base, a.elems, u64::from(a.elem_bytes)))
            .collect();
        let sector_mask = !(u64::from(self.cfg.l1.sector_bytes) - 1);

        // Threadblock queues per node, in dispatch (linear) order.
        let mut queues: Vec<VecDeque<(u32, u32)>> =
            vec![VecDeque::new(); topo.num_nodes() as usize];
        for by in 0..gdy {
            for bx in 0..gdx {
                let node = plan.schedule.node_of_tb(bx, by, launch.grid, &topo);
                queues[node.0 as usize].push_back((bx, by));
            }
        }

        let tb_slots_per_sm = self
            .cfg
            .max_tbs_per_sm
            .min(self.cfg.warps_per_sm / warps_per_tb)
            .max(1);
        let mut sms = vec![
            SmState {
                free_tb_slots: tb_slots_per_sm,
                free_warps: self.cfg.warps_per_sm.max(warps_per_tb),
                next_issue: 0.0,
            };
            self.cfg.total_sms() as usize
        ];

        let mut warps: Vec<WarpCtx> = Vec::new();
        let mut free_warp_slots: Vec<u32> = Vec::new();
        let mut tbs: Vec<TbCtx> = Vec::new();
        let mut free_tb_slots: Vec<u32> = Vec::new();
        let mut heap: BinaryHeap<Reverse<Event>> = BinaryHeap::new();
        let mut seq: u64 = 0;
        let mut stats = KernelStats::default();
        let mut access_buf: Vec<ThreadAccess> = Vec::with_capacity(256);
        let mut sector_buf: Vec<(u64, bool)> = Vec::with_capacity(64);
        let mut max_time: f64 = 0.0;

        // Pre-sized off-node attribution: the per-sector hot path indexes
        // directly; `remote_args` tracks 1 + the highest argument that saw
        // off-node traffic so the vector can be truncated at the end to
        // the exact length the lazily-grown version would have had.
        stats.offnode_by_arg = vec![0; addr_tab.len()];
        let mut remote_args: usize = 0;

        // When the kernel's access pattern does not depend on the loop
        // iteration, each warp's coalesced sector list is generated once
        // and replayed on later trips (per warp slot; reset on dispatch).
        let iter_invariant = trips > 1 && kernel.iter_invariant();
        let mut warp_cache: Vec<CachedIteration> = Vec::new();

        // Dispatches threadblocks from `node`'s queue onto its SMs.
        let dispatch =
            |node: u32,
             now: f64,
             queues: &mut Vec<VecDeque<(u32, u32)>>,
             sms: &mut Vec<SmState>,
             warps: &mut Vec<WarpCtx>,
             free_warp_slots: &mut Vec<u32>,
             tbs: &mut Vec<TbCtx>,
             free_tb_slots: &mut Vec<u32>,
             heap: &mut BinaryHeap<Reverse<Event>>,
             seq: &mut u64,
             stats: &mut KernelStats,
             warp_cache: &mut Vec<CachedIteration>| {
                let sm_base = node * sms_per_chiplet;
                'outer: while !queues[node as usize].is_empty() {
                    // First SM on the node with room for a whole block.
                    let mut chosen = None;
                    for i in 0..sms_per_chiplet {
                        let sm = sm_base + i;
                        let s = &sms[sm as usize];
                        if s.free_tb_slots > 0 && s.free_warps >= warps_per_tb {
                            chosen = Some(sm);
                            break;
                        }
                    }
                    let Some(sm) = chosen else { break 'outer };
                    let (bx, by) = queues[node as usize]
                        .pop_front()
                        .expect("checked non-empty");
                    sms[sm as usize].free_tb_slots -= 1;
                    sms[sm as usize].free_warps -= warps_per_tb;
                    let tb_idx = match free_tb_slots.pop() {
                        Some(i) => {
                            tbs[i as usize] = TbCtx {
                                live_warps: warps_per_tb,
                                node,
                            };
                            i
                        }
                        None => {
                            tbs.push(TbCtx {
                                live_warps: warps_per_tb,
                                node,
                            });
                            (tbs.len() - 1) as u32
                        }
                    };
                    stats.threadblocks += 1;
                    if let Some(s) = sink {
                        s.record(TraceEvent::TbDispatch {
                            time: now,
                            bx,
                            by,
                            node: node as u16,
                            sm,
                        });
                    }
                    for w in 0..warps_per_tb {
                        let ctx = WarpCtx {
                            bx,
                            by,
                            warp: w,
                            iter: 0,
                            sm,
                            tb: tb_idx,
                        };
                        let warp_idx = match free_warp_slots.pop() {
                            Some(i) => {
                                warps[i as usize] = ctx;
                                warp_cache[i as usize] = None;
                                i
                            }
                            None => {
                                warps.push(ctx);
                                warp_cache.push(None);
                                (warps.len() - 1) as u32
                            }
                        };
                        *seq += 1;
                        heap.push(Reverse(Event {
                            time: now,
                            seq: *seq,
                            warp: warp_idx,
                        }));
                    }
                }
            };

        for node in 0..topo.num_nodes() {
            dispatch(
                node,
                0.0,
                &mut queues,
                &mut sms,
                &mut warps,
                &mut free_warp_slots,
                &mut tbs,
                &mut free_tb_slots,
                &mut heap,
                &mut seq,
                &mut stats,
                &mut warp_cache,
            );
        }

        // Generates one warp iteration's accesses and coalesces them into
        // sorted, deduplicated sectors; returns the instruction count.
        let gen = |ctx: WarpCtx,
                   access_buf: &mut Vec<ThreadAccess>,
                   sector_buf: &mut Vec<(u64, bool)>|
         -> u64 {
            access_buf.clear();
            kernel.warp_accesses((ctx.bx, ctx.by), ctx.warp, ctx.iter, access_buf);
            sector_buf.clear();
            // Adjacent-duplicate suppression: consecutive threads of a
            // coalesced site map to long runs of the same sector, and a
            // run collapses to one entry under sort + dedup anyway (the
            // write flag is constant within a site, so OR-merging is a
            // no-op). Skipping repeats up front shrinks the sort input
            // several-fold without changing its outcome.
            let mut last = (u64::MAX, false);
            for a in access_buf.iter() {
                let (base, elems, elem_bytes) = addr_tab[usize::from(a.arg)];
                // In-bounds indices (the overwhelmingly common case) skip
                // the u64 division of the wrap-around modulo.
                let idx = if a.idx < elems { a.idx } else { a.idx % elems };
                let addr = base + idx * elem_bytes;
                let entry = (addr & sector_mask, a.write);
                if entry != last {
                    sector_buf.push(entry);
                    last = entry;
                }
            }
            sector_buf.sort_unstable();
            sector_buf.dedup_by(|next, prev| {
                if next.0 == prev.0 {
                    prev.1 |= next.1;
                    true
                } else {
                    false
                }
            });
            // Issue cost: one compute instruction plus one memory
            // instruction per (approximate) access site.
            let mem_instrs = (access_buf.len() as u64)
                .div_ceil(u64::from(warp_size))
                .max(u64::from(!access_buf.is_empty()));
            1 + mem_instrs
        };

        while let Some(Reverse(ev)) = heap.pop() {
            let now = ev.time;
            max_time = max_time.max(now);
            let ctx = warps[ev.warp as usize];

            if ctx.iter >= trips {
                // Warp retired.
                free_warp_slots.push(ev.warp);
                let tb = &mut tbs[ctx.tb as usize];
                tb.live_warps -= 1;
                if tb.live_warps == 0 {
                    let node = tb.node;
                    free_tb_slots.push(ctx.tb);
                    let s = &mut sms[ctx.sm as usize];
                    s.free_tb_slots += 1;
                    s.free_warps += warps_per_tb;
                    if let Some(s) = sink {
                        s.record(TraceEvent::TbRetire {
                            time: now,
                            bx: ctx.bx,
                            by: ctx.by,
                            node: node as u16,
                            sm: ctx.sm,
                        });
                    }
                    dispatch(
                        node,
                        now,
                        &mut queues,
                        &mut sms,
                        &mut warps,
                        &mut free_warp_slots,
                        &mut tbs,
                        &mut free_tb_slots,
                        &mut heap,
                        &mut seq,
                        &mut stats,
                        &mut warp_cache,
                    );
                }
                continue;
            }

            // Generate this iteration's accesses — or replay the warp's
            // cached sector list when the pattern is iteration-invariant.
            let (instrs, sectors): (u64, &[(u64, bool)]) = if iter_invariant {
                let slot = &mut warp_cache[ev.warp as usize];
                if slot.is_none() {
                    let instrs = gen(ctx, &mut access_buf, &mut sector_buf);
                    *slot = Some((instrs, sector_buf.clone()));
                }
                let cached = slot.as_ref().expect("slot was just filled");
                (cached.0, &cached.1)
            } else {
                let instrs = gen(ctx, &mut access_buf, &mut sector_buf);
                (instrs, &sector_buf)
            };

            stats.warp_instructions += instrs;
            let sm_state = &mut sms[ctx.sm as usize];
            let issue = now.max(sm_state.next_issue);
            sm_state.next_issue = issue + issue_cost * instrs as f64;

            // Route every sector; the warp blocks on the slowest.
            let mut done = issue + compute_cycles;
            for &(sector, write) in sectors {
                let t = self.route_sector(
                    issue,
                    ctx.sm,
                    sector,
                    write,
                    &mut stats,
                    &mut remote_args,
                    sink,
                );
                done = done.max(t);
            }

            warps[ev.warp as usize].iter += 1;
            seq += 1;
            heap.push(Reverse(Event {
                time: done,
                seq,
                warp: ev.warp,
            }));
        }

        for q in &queues {
            debug_assert!(q.is_empty(), "all threadblocks must have run");
        }

        // Match the lazily-grown attribution vector of the reference
        // engine: report only up to the highest arg with off-node traffic.
        stats.offnode_by_arg.truncate(remote_args);

        stats.cycles = max_time;
        stats.inter_chiplet_bytes = self.fabric.inter_chiplet_bytes();
        stats.inter_gpu_bytes = self.fabric.inter_gpu_bytes();
        stats.page_faults = self.mem.page_faults();
        stats.page_migrations = self.mem.migrations();
        stats
    }

    /// Drives one 32 B sector through the hierarchy starting at `t`;
    /// returns its completion time. `remote_args` is raised to
    /// `1 + arg` for every sector whose home is off-node (the caller
    /// truncates the pre-sized `offnode_by_arg` to it). When `sink` is
    /// present, the terminal service point is reported as one
    /// [`ladm_obs::Event::Sector`] (plus first-touch and DRAM-channel
    /// claims along the way).
    #[allow(clippy::too_many_arguments)]
    fn route_sector(
        &mut self,
        t: f64,
        sm: u32,
        addr: u64,
        write: bool,
        stats: &mut KernelStats,
        remote_args: &mut usize,
        sink: Option<&dyn TraceSink>,
    ) -> f64 {
        let cfg = &self.cfg;
        let topo = cfg.topology;
        let node = self.sm_node(sm);
        let sector = u64::from(cfg.l1.sector_bytes);
        let l1_lat = cfg.l1.latency as f64;
        let l2_lat = cfg.l2.latency as f64;
        // Event context: the issue time, page and payload of this sector.
        let issue_t = t;
        let page = addr / cfg.page_bytes;
        let sector_u32 = cfg.l1.sector_bytes;
        let emit = |route: SectorRoute, home: NodeId| {
            if let Some(s) = sink {
                s.record(TraceEvent::Sector {
                    time: issue_t,
                    node: node.0 as u16,
                    home: home.0 as u16,
                    route,
                    write,
                    page,
                    bytes: sector_u32,
                });
            }
        };
        let emit_dram = |at: NodeId, time: f64| {
            if let Some(s) = sink {
                s.record(TraceEvent::LinkTransfer {
                    time,
                    level: LinkLevel::Dram,
                    index: at.0 as u16,
                    bytes: sector_u32,
                });
            }
        };

        // L1: write-through, no write-allocate.
        if write {
            self.l1[sm as usize].invalidate(addr);
            stats.l1_misses += 1;
        } else {
            match self.l1[sm as usize].access(addr) {
                Lookup::Hit => {
                    stats.l1_hits += 1;
                    emit(SectorRoute::L1Hit, node);
                    return t + l1_lat;
                }
                _ => stats.l1_misses += 1,
            }
        }

        // SM -> L2 crossbar hop (charged once with the data payload).
        let mut t = self.fabric.sm_to_l2_traced(t + l1_lat, node, sector, sink);

        // Single flat-table lookup: home node, owning arg and insertion
        // policy in one step (no hash probes, no binary search).
        let home = self.mem.resolve(addr, node, &topo);
        if home.faulted {
            t += cfg.page_fault_cycles as f64;
            if let Some(s) = sink {
                s.record(TraceEvent::FirstTouch {
                    time: issue_t,
                    page,
                    node: home.node.0 as u16,
                });
            }
        }

        if home.node == node {
            // LOCAL-LOCAL.
            stats.l2_local_local.accesses += 1;
            match self.l2[node.0 as usize].access(addr) {
                Lookup::Hit => {
                    stats.l2_local_local.hits += 1;
                    emit(SectorRoute::L2LocalHit, home.node);
                    t + l2_lat
                }
                _ => {
                    stats.dram_sectors += 1;
                    emit(SectorRoute::DramLocal, home.node);
                    emit_dram(node, t + l2_lat);
                    let dram_done = self.dram[node.0 as usize].claim(t + l2_lat, sector);
                    if write {
                        // Posted write: bandwidth charged, latency hidden.
                        t + l2_lat
                    } else {
                        dram_done + cfg.dram_latency as f64
                    }
                }
            }
        } else {
            let offgpu = !topo.same_gpu(home.node, node);
            let arg = home.arg as usize;
            *remote_args = (*remote_args).max(arg + 1);
            // Reactive migration (opt-in): enough consecutive accesses
            // from this node pull the whole page across the fabric; the
            // triggering request stalls for the transfer and is then
            // served locally.
            if cfg.migration_threshold > 0
                && self
                    .mem
                    .record_remote_access(addr, node, cfg.migration_threshold)
            {
                emit(SectorRoute::Migrated, home.node);
                let t = self
                    .fabric
                    .route_traced(t + l2_lat, home.node, node, cfg.page_bytes, sink);
                emit_dram(node, t);
                let t = self.dram[node.0 as usize].claim(t, sector) + cfg.dram_latency as f64;
                self.l2[node.0 as usize].fill(addr);
                if !write {
                    self.l1[sm as usize].fill(addr);
                }
                return t;
            }
            if write {
                stats.sectors_offnode += 1;
                stats.offnode_by_arg[arg] += 1;
                if offgpu {
                    stats.sectors_offgpu += 1;
                }
                // Write data travels to the home node; the local copy (if
                // any) is invalidated. Acks are free.
                self.l2[node.0 as usize].invalidate(addr);
                let t = self
                    .fabric
                    .route_traced(t + l2_lat, node, home.node, sector, sink);
                stats.l2_remote_local.accesses += 1;
                let home_l2 = &mut self.l2[home.node.0 as usize];
                if home_l2.probe(addr) == Lookup::Hit {
                    stats.l2_remote_local.hits += 1;
                    home_l2.fill(addr);
                    emit(SectorRoute::L2HomeHit, home.node);
                    t + l2_lat
                } else {
                    home_l2.fill(addr);
                    stats.dram_sectors += 1;
                    emit(SectorRoute::DramRemote, home.node);
                    emit_dram(home.node, t + l2_lat);
                    // Posted write: bandwidth charged, latency hidden.
                    self.dram[home.node.0 as usize].claim(t + l2_lat, sector)
                }
            } else {
                // LOCAL-REMOTE: the dynamically-shared L2 checks the local
                // partition before going remote (remote caching, [51]).
                if cfg.remote_caching {
                    stats.l2_local_remote.accesses += 1;
                    if self.l2[node.0 as usize].probe(addr) == Lookup::Hit {
                        stats.l2_local_remote.hits += 1;
                        emit(SectorRoute::L2RemoteCachedHit, home.node);
                        return t + l2_lat;
                    }
                }
                // The request really leaves the chiplet now.
                stats.sectors_offnode += 1;
                stats.offnode_by_arg[arg] += 1;
                if offgpu {
                    stats.sectors_offgpu += 1;
                }
                // Request header to the home node.
                let mut t = self
                    .fabric
                    .route_traced(t + l2_lat, node, home.node, 8, sink);
                // REMOTE-LOCAL at the home L2.
                stats.l2_remote_local.accesses += 1;
                let insert = home.remote_insert;
                let home_l2 = &mut self.l2[home.node.0 as usize];
                match home_l2.probe(addr) {
                    Lookup::Hit => {
                        stats.l2_remote_local.hits += 1;
                        emit(SectorRoute::L2HomeHit, home.node);
                        t += l2_lat;
                    }
                    _ => {
                        stats.dram_sectors += 1;
                        emit(SectorRoute::DramRemote, home.node);
                        emit_dram(home.node, t + l2_lat);
                        t = self.dram[home.node.0 as usize].claim(t + l2_lat, sector)
                            + cfg.dram_latency as f64;
                        if insert == RemoteInsert::Twice {
                            home_l2.fill(addr);
                        }
                    }
                }
                // Data reply to the requester; cached locally (remote
                // caching) and in the L1.
                let t = self.fabric.route_traced(t, home.node, node, sector, sink);
                if cfg.remote_caching {
                    self.l2[node.0 as usize].fill(addr);
                }
                self.l1[sm as usize].fill(addr);
                t
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ladm_core::analysis::GridShape;
    use ladm_core::expr::{Expr, Var};
    use ladm_core::launch::{ArgStatic, KernelStatic, LaunchInfo};
    use ladm_core::policies::{BaselineRr, KernelWide, Lasp};

    /// Minimal vecadd-style kernel: each thread reads a[i], b[i], writes
    /// c[i]; i = bx*bdx + tx.
    #[derive(Debug)]
    struct VecAdd {
        launch: LaunchInfo,
    }

    impl VecAdd {
        fn new(blocks: u32, bdx: u32) -> Self {
            let idx = (Expr::var(Var::Bx) * Expr::var(Var::Bdx) + Expr::var(Var::Tx)).to_poly();
            let n = u64::from(blocks) * u64::from(bdx);
            let kernel = KernelStatic {
                name: "vecadd",
                grid_shape: GridShape::OneD,
                args: vec![
                    ArgStatic::read("a", 4, idx.clone()),
                    ArgStatic::read("b", 4, idx.clone()),
                    ArgStatic::write("c", 4, idx),
                ],
            };
            VecAdd {
                launch: LaunchInfo::new(kernel, (blocks, 1), (bdx, 1), vec![n, n, n]),
            }
        }
    }

    impl KernelExec for VecAdd {
        fn launch(&self) -> &LaunchInfo {
            &self.launch
        }
        fn trips(&self) -> u32 {
            1
        }
        fn warp_accesses(
            &self,
            tb: (u32, u32),
            warp: u32,
            _iter: u32,
            out: &mut Vec<ThreadAccess>,
        ) {
            let bdx = self.launch.block.0;
            for lane in 0..32u32 {
                let t = warp * 32 + lane;
                if t >= bdx {
                    break;
                }
                let i = u64::from(tb.0) * u64::from(bdx) + u64::from(t);
                out.push(ThreadAccess::load(0, i));
                out.push(ThreadAccess::load(1, i));
                out.push(ThreadAccess::store(2, i));
            }
        }
    }

    #[test]
    fn vecadd_runs_to_completion() {
        let mut sys = GpuSystem::new(SimConfig::paper_multi_gpu());
        let kernel = VecAdd::new(256, 128);
        let stats = sys.run(&kernel, &BaselineRr::new());
        assert_eq!(stats.threadblocks, 256);
        assert!(stats.cycles > 0.0);
        assert!(stats.warp_instructions > 0);
        // Every element read twice + written once; sectors flowed.
        assert!(stats.l1_misses > 0);
    }

    #[test]
    fn monolithic_has_no_offchip_traffic() {
        let mut sys = GpuSystem::new(SimConfig::monolithic());
        let kernel = VecAdd::new(128, 128);
        let stats = sys.run(&kernel, &KernelWide::new());
        assert_eq!(stats.sectors_offnode, 0);
        assert_eq!(stats.inter_gpu_bytes, 0);
        assert_eq!(stats.offchip_fraction(), 0.0);
    }

    #[test]
    fn ladm_vecadd_is_fully_local() {
        // LASP's aligned batches + interleaved pages keep every vecadd
        // access on-node (Table I page-alignment row).
        let mut sys = GpuSystem::new(SimConfig::paper_multi_gpu());
        let kernel = VecAdd::new(512, 128);
        let stats = sys.run(&kernel, &Lasp::ladm());
        assert_eq!(
            stats.sectors_offnode,
            0,
            "off-chip fraction = {}",
            stats.offchip_fraction()
        );
    }

    #[test]
    fn baseline_rr_generates_offchip_traffic() {
        let mut sys = GpuSystem::new(SimConfig::paper_multi_gpu());
        let kernel = VecAdd::new(512, 128);
        let stats = sys.run(&kernel, &BaselineRr::new());
        // One-page granularity placement vs one-block batches: most
        // accesses go off-node on a 16-node machine.
        assert!(
            stats.offchip_fraction() > 0.5,
            "off-chip fraction = {}",
            stats.offchip_fraction()
        );
    }

    #[test]
    fn ladm_is_faster_than_baseline_on_vecadd() {
        let kernel = VecAdd::new(512, 128);
        let mut sys = GpuSystem::new(SimConfig::paper_multi_gpu());
        let base = sys.run(&kernel, &BaselineRr::new());
        let ladm = sys.run(&kernel, &Lasp::ladm());
        assert!(
            ladm.cycles < base.cycles,
            "LADM {} vs baseline {}",
            ladm.cycles,
            base.cycles
        );
    }

    #[test]
    fn stats_conservation_invariants() {
        let mut sys = GpuSystem::new(SimConfig::paper_multi_gpu());
        let kernel = VecAdd::new(128, 128);
        let stats = sys.run(&kernel, &BaselineRr::new());
        // Off-node sectors are a subset of L2-level sectors.
        assert!(stats.sectors_offnode <= stats.l1_misses);
        assert!(stats.sectors_offgpu <= stats.sectors_offnode);
        // Each traffic class has hits <= accesses.
        assert!(stats.l2_local_local.hits <= stats.l2_local_local.accesses);
        assert!(stats.l2_local_remote.hits <= stats.l2_local_remote.accesses);
        assert!(stats.l2_remote_local.hits <= stats.l2_remote_local.accesses);
        // LOCAL-LOCAL + LOCAL-REMOTE lookups == L2-level read+write sectors.
        let lookups = stats.l2_local_local.accesses + stats.l2_local_remote.accesses;
        // Writes to remote homes skip the LOCAL-REMOTE lookup.
        assert!(lookups <= stats.l1_misses);
    }

    #[test]
    fn tracing_records_pipeline_events_without_changing_stats() {
        use ladm_obs::{Event, RecordingSink};

        let kernel = VecAdd::new(64, 128);
        let mut sys = GpuSystem::new(SimConfig::paper_multi_gpu());
        let baseline = sys.run(&kernel, &Lasp::ladm());

        let sink = Arc::new(RecordingSink::new());
        sys.set_sink(sink.clone());
        let traced = sys.run(&kernel, &Lasp::ladm());
        assert_eq!(
            format!("{traced:?}"),
            format!("{baseline:?}"),
            "tracing must leave KernelStats bit-identical"
        );

        let events = sink.take_events();
        assert_eq!(events[0].name(), "kernel_begin");
        assert_eq!(events.last().unwrap().name(), "kernel_end");
        let count = |n: &str| events.iter().filter(|e| e.name() == n).count();
        assert_eq!(count("arg_decision"), 3, "one decision per argument");
        assert_eq!(count("tb_dispatch"), 64);
        assert_eq!(count("tb_retire"), 64);
        assert!(count("sector") > 0, "sector routes must be reported");
        assert!(count("link_transfer") > 0, "link claims must be reported");
        // Dispatch/retire pair up on the same (bx, node, sm).
        let dispatched: Vec<(u32, u16, u32)> = events
            .iter()
            .filter_map(|e| match e {
                Event::TbDispatch { bx, node, sm, .. } => Some((*bx, *node, *sm)),
                _ => None,
            })
            .collect();
        for e in &events {
            if let Event::TbRetire { bx, node, sm, .. } = e {
                assert!(dispatched.contains(&(*bx, *node, *sm)));
            }
        }

        sys.clear_sink();
        sys.run(&kernel, &Lasp::ladm());
        assert!(sink.is_empty(), "cleared sink must see nothing");
    }

    #[test]
    fn first_touch_faults_are_counted() {
        let mut sys = GpuSystem::new(SimConfig::paper_multi_gpu());
        let kernel = VecAdd::new(128, 128);
        let stats = sys.run(&kernel, &ladm_core::policies::BatchFt::new());
        assert!(stats.page_faults > 0);
    }
}
