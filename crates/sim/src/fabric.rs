//! The *shared* interconnect: per-GPU inter-chiplet rings and the
//! inter-GPU switch (Fig. 1). The SM↔L2 crossbar is chiplet-private and
//! lives in [`crate::shard::ChipletShard`].
//!
//! Transfers claim one [`TokenBucket`] per traversed level, so bandwidth
//! pressure on any level produces queueing delay. Traffic crossing a
//! chiplet boundary is counted as *inter-chiplet*; traffic crossing a GPU
//! boundary as *inter-GPU* (also claiming the egress/ingress switch ports
//! and both rings).

use crate::bw::TokenBucket;
use crate::config::SimConfig;
use ladm_core::topology::{NodeId, Topology};
use ladm_obs::{Event, LinkLevel, TraceSink};

/// Interconnect state and traffic counters.
#[derive(Debug, Clone)]
pub struct Fabric {
    topo: Topology,
    ring: Vec<TokenBucket>,
    switch_out: Vec<TokenBucket>,
    switch_in: Vec<TokenBucket>,
    ring_latency: u64,
    switch_latency: u64,
    inter_chiplet_bytes: u64,
    inter_gpu_bytes: u64,
}

impl Fabric {
    /// Builds the fabric for a configuration.
    pub fn new(cfg: &SimConfig) -> Self {
        let gpus = cfg.topology.num_gpus as usize;
        Fabric {
            topo: cfg.topology,
            ring: (0..gpus).map(|_| TokenBucket::new(cfg.ring_bw)).collect(),
            switch_out: (0..gpus).map(|_| TokenBucket::new(cfg.switch_bw)).collect(),
            switch_in: (0..gpus).map(|_| TokenBucket::new(cfg.switch_bw)).collect(),
            ring_latency: cfg.ring_latency,
            switch_latency: cfg.switch_latency,
            inter_chiplet_bytes: 0,
            inter_gpu_bytes: 0,
        }
    }

    /// Routes `bytes` from chiplet `from` to chiplet `to`; returns arrival
    /// time. Same-chiplet routing is free (the xbar hop is charged
    /// separately by the request path).
    pub fn route(&mut self, now: f64, from: NodeId, to: NodeId, bytes: u64) -> f64 {
        self.route_traced(now, from, to, bytes, None)
    }

    /// As [`Fabric::route`], reporting every per-level link claim
    /// (ring, switch egress/ingress) to `sink`.
    pub fn route_traced(
        &mut self,
        now: f64,
        from: NodeId,
        to: NodeId,
        bytes: u64,
        sink: Option<&dyn TraceSink>,
    ) -> f64 {
        if from == to {
            return now;
        }
        let fg = self.topo.gpu_of(from).0 as usize;
        let tg = self.topo.gpu_of(to).0 as usize;
        let link = |level: LinkLevel, index: usize, t: f64| {
            if let Some(s) = sink {
                s.record(Event::LinkTransfer {
                    time: t,
                    level,
                    index: index as u16,
                    bytes: bytes as u32,
                });
            }
        };
        let mut t = now;
        if fg == tg {
            // On-package ring hop.
            link(LinkLevel::Ring, fg, t);
            t = self.ring[fg].claim(t, bytes) + self.ring_latency as f64;
            self.inter_chiplet_bytes += bytes;
        } else {
            // Ring to the GPU edge (only if this GPU has multiple
            // chiplets), switch egress, switch ingress, ring to the home
            // chiplet.
            if self.topo.chiplets_per_gpu > 1 {
                link(LinkLevel::Ring, fg, t);
                t = self.ring[fg].claim(t, bytes) + self.ring_latency as f64;
            }
            link(LinkLevel::SwitchOut, fg, t);
            t = self.switch_out[fg].claim(t, bytes) + self.switch_latency as f64;
            link(LinkLevel::SwitchIn, tg, t);
            t = self.switch_in[tg].claim(t, bytes);
            if self.topo.chiplets_per_gpu > 1 {
                link(LinkLevel::Ring, tg, t);
                t = self.ring[tg].claim(t, bytes) + self.ring_latency as f64;
            }
            self.inter_gpu_bytes += bytes;
        }
        t
    }

    /// Bytes that crossed a chiplet boundary within a GPU.
    pub fn inter_chiplet_bytes(&self) -> u64 {
        self.inter_chiplet_bytes
    }

    /// Bytes that crossed the inter-GPU switch.
    pub fn inter_gpu_bytes(&self) -> u64 {
        self.inter_gpu_bytes
    }

    /// Resets queues and counters (kernel boundary).
    pub fn reset(&mut self) {
        for b in self
            .ring
            .iter_mut()
            .chain(&mut self.switch_out)
            .chain(&mut self.switch_in)
        {
            b.reset();
        }
        self.inter_chiplet_bytes = 0;
        self.inter_gpu_bytes = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fabric() -> Fabric {
        Fabric::new(&SimConfig::paper_multi_gpu())
    }

    #[test]
    fn same_chiplet_is_free() {
        let mut f = fabric();
        assert_eq!(f.route(10.0, NodeId(3), NodeId(3), 32), 10.0);
        assert_eq!(f.inter_chiplet_bytes(), 0);
        assert_eq!(f.inter_gpu_bytes(), 0);
    }

    #[test]
    fn same_gpu_uses_ring_only() {
        let mut f = fabric();
        let t = f.route(0.0, NodeId(0), NodeId(3), 32);
        assert!(t >= 80.0);
        assert_eq!(f.inter_chiplet_bytes(), 32);
        assert_eq!(f.inter_gpu_bytes(), 0);
    }

    #[test]
    fn cross_gpu_uses_switch_and_rings() {
        let mut f = fabric();
        let t = f.route(0.0, NodeId(0), NodeId(5), 32);
        // two ring hops + switch latency at minimum
        assert!(t >= (2 * 80 + 250) as f64);
        assert_eq!(f.inter_gpu_bytes(), 32);
        // the cross-GPU path does not double-count as intra-GPU traffic
        assert_eq!(f.inter_chiplet_bytes(), 0);
    }

    #[test]
    fn switch_contention_queues() {
        let mut f = fabric();
        // Saturate GPU0 egress: switch bw = 180 GB/s ≈ 128.6 B/cyc.
        let t1 = f.route(0.0, NodeId(0), NodeId(4), 128_600);
        let t2 = f.route(0.0, NodeId(1), NodeId(8), 32);
        // The second transfer queues behind ~1000 cycles of the first
        // (shared egress port), so it cannot arrive before it.
        assert!(t2 > 900.0, "t2 = {t2}");
        assert!(t1 > 1000.0);
    }

    #[test]
    fn single_chiplet_gpus_skip_ring() {
        let cfg = SimConfig::fig4_xbar(90);
        let mut f = Fabric::new(&cfg);
        let t = f.route(0.0, NodeId(0), NodeId(1), 32);
        // only switch latency, no ring hops
        assert!(t < 2.0 * cfg.switch_latency as f64);
        assert_eq!(f.inter_gpu_bytes(), 32);
    }

    #[test]
    fn reset_clears_counters_and_queues() {
        let mut f = fabric();
        f.route(0.0, NodeId(0), NodeId(1), 1 << 20);
        f.reset();
        assert_eq!(f.inter_chiplet_bytes(), 0);
        let t = f.route(0.0, NodeId(0), NodeId(1), 32);
        assert!(t < 100.0);
    }
}
