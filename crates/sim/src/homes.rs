//! Pure, side-effect-free page→home resolution shared by the engine's
//! address space, the oracle resolver and the static traffic analyzer.
//!
//! [`PageMap`] already defines each placement policy's home function;
//! this module is the single choke point through which all three
//! consumers interrogate it, so the engine can never drift from what the
//! analyzer assumes. Everything here is a pure function of the map and
//! the topology — no allocation tables, no first-touch pinning, no
//! migration state (those belong to [`crate::mem::AddressSpace`] and the
//! oracle, which layer their dynamic state *on top* of these answers).

use ladm_core::plan::{KernelPlan, PageMap};
use ladm_core::topology::{NodeId, Topology};

/// The statically-known home of one byte (or page) under a placement
/// map.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StaticHome {
    /// The map pins the byte to this node, independent of execution.
    Node(NodeId),
    /// First-touch placement: the home is decided at runtime by the
    /// first accessor and cannot be known statically.
    FirstTouch,
}

/// Resolves the home of the byte at `rel_offset` (relative to the start
/// of the allocation) under `map`. Sub-page maps resolve at their own
/// granularity; every map except [`PageMap::FirstTouch`] yields a
/// definite node.
pub fn static_home(map: &PageMap, rel_offset: u64, page_bytes: u64, topo: &Topology) -> StaticHome {
    match map.node_of(rel_offset, page_bytes, topo) {
        Some(node) => StaticHome::Node(node),
        None => StaticHome::FirstTouch,
    }
}

/// The byte granularity at which `map` can change homes: sub-page maps
/// stripe below the page size, everything else is page-granular.
pub fn placement_granularity(map: &PageMap, page_bytes: u64) -> u64 {
    match map {
        PageMap::SubPageInterleave { gran_bytes, .. } => (*gran_bytes).max(1),
        _ => page_bytes.max(1),
    }
}

/// Whether every byte of `[lo, hi]` (inclusive, relative to the
/// allocation base) is statically homed at `node`. Walks the range at
/// the map's placement granularity; returns `false` — the conservative
/// answer — when the walk would exceed `cap` granules or any granule is
/// first-touch or foreign.
pub fn range_is_local(
    map: &PageMap,
    lo: u64,
    hi: u64,
    page_bytes: u64,
    topo: &Topology,
    node: NodeId,
    cap: u64,
) -> bool {
    debug_assert!(lo <= hi);
    let gran = placement_granularity(map, page_bytes);
    let first = lo / gran;
    let last = hi / gran;
    if last - first >= cap {
        return false;
    }
    (first..=last).all(|g| static_home(map, g * gran, page_bytes, topo) == StaticHome::Node(node))
}

/// The node the plan's scheduler assigns threadblock `(bx, by)` to —
/// the pure counterpart of the engine's dispatch decision.
pub fn plan_tb_node(
    plan: &KernelPlan,
    bx: u32,
    by: u32,
    grid: (u32, u32),
    topo: &Topology,
) -> NodeId {
    plan.schedule.node_of_tb(bx, by, grid, topo)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ladm_core::plan::RrOrder;

    fn topo() -> Topology {
        Topology::paper_multi_gpu()
    }

    #[test]
    fn static_home_matches_the_map() {
        let t = topo();
        let map = PageMap::Interleave {
            gran_pages: 2,
            order: RrOrder::Hierarchical,
        };
        for page in 0..64u64 {
            let want = map.node_of_page(page, &t).unwrap();
            assert_eq!(
                static_home(&map, page * 4096, 4096, &t),
                StaticHome::Node(want)
            );
        }
        assert_eq!(
            static_home(&PageMap::FirstTouch, 0, 4096, &t),
            StaticHome::FirstTouch
        );
    }

    #[test]
    fn sub_page_granularity_is_below_the_page() {
        let map = PageMap::SubPageInterleave {
            gran_bytes: 256,
            order: RrOrder::Hierarchical,
        };
        assert_eq!(placement_granularity(&map, 4096), 256);
        assert_eq!(placement_granularity(&PageMap::FirstTouch, 4096), 4096);
    }

    #[test]
    fn range_is_local_only_for_matching_fixed_pages() {
        let t = topo();
        let map = PageMap::Fixed(NodeId(3));
        assert!(range_is_local(
            &map,
            0,
            4096 * 8 - 1,
            4096,
            &t,
            NodeId(3),
            64
        ));
        assert!(!range_is_local(&map, 0, 4095, 4096, &t, NodeId(2), 64));
        // Interleaving across nodes is never all-local past one granule.
        let il = PageMap::Interleave {
            gran_pages: 1,
            order: RrOrder::Hierarchical,
        };
        assert!(!range_is_local(
            &il,
            0,
            2 * 4096 - 1,
            4096,
            &t,
            NodeId(0),
            64
        ));
        assert!(range_is_local(&il, 0, 4095, 4096, &t, NodeId(0), 64));
    }

    #[test]
    fn range_walk_respects_the_cap() {
        let t = topo();
        let map = PageMap::Fixed(NodeId(0));
        // 65 granules > cap 64 → conservative false even though local.
        assert!(!range_is_local(
            &map,
            0,
            65 * 4096 - 1,
            4096,
            &t,
            NodeId(0),
            64
        ));
    }
}
