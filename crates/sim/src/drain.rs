//! Conservative-lookahead parallel drain: windowed-round execution of
//! the event heap that runs the *stateful* half of warp steps on worker
//! threads — the half the epoch-prefetch driver (`GpuSystem::run_epochs`)
//! leaves serial — while keeping [`crate::stats::KernelStats`]
//! bit-identical to the serial engine at every thread count.
//!
//! ## The window and why it is safe
//!
//! Each round opens a window `[W0, W0 + Δ)` at the heap's head time `W0`
//! with `Δ = min(kernel compute block, topology lookahead)`
//! ([`crate::horizon::lookahead`]) and pops every pending event below
//! the cap — the round's *candidates*, already in canonical
//! `(time, seq)` order.
//!
//! This engine applies remote effects at the canonical position of the
//! *triggering* event (the coordinator charges fabric hops and the home
//! shard inline), so the binding bound on the window is not message
//! arrival — it is how soon a processed event can schedule *new* work
//! inside the window. A non-retiring warp step issues at
//! `issue ≥ now ≥ W0` and re-queues at `done ≥ issue + compute ≥ W0 + Δ`
//! (`Δ ≤ compute`): strictly outside the window. Warp retirement is the
//! one exception — `dispatch_node` queues fresh warps *at* the retire
//! time — so a retire terminates the parallel prefix and is replayed
//! serially, where the dispatch lands in canonical order.
//!
//! ## Round anatomy
//!
//! 1. **snapshot** — pop the window's candidates.
//! 2. **gen_fanout** — fan the pure generation work (sector lists) out
//!    per shard, exactly like the epoch driver, but over the pool's
//!    persistent workers ([`ladm_core::par::PhasedPool`]).
//! 3. **classify** — find the longest candidate prefix whose every
//!    sector is *bound to the executing shard's own memory*
//!    ([`crate::mem::AddressSpace::resolve_bound`] — a pure probe).
//!    Within the window, such events touch only their own shard's
//!    state (L1/L2/crossbar/DRAM/stats) plus their own warp slot, so
//!    executing them grouped per shard — canonical order within each
//!    shard — is observationally identical to the serial interleaving.
//! 4. **drain / drain_par** — execute the local prefix on the pool with
//!    seqs preassigned to the exact values the serial engine would have
//!    used (`seq0 + 1 + i` for prefix position `i`), then replay the
//!    window's tail (boundary/retire/first-touch events) serially
//!    through [`GpuSystem::step`].
//!
//! Rounds whose window or prefix is smaller than [`PAR_MIN`] skip the
//! fan-out and run serially — the cutoff is a constant (never derived
//! from the thread count) so the round structure, and with it the
//! merged profiler-span shape, is identical at any worker count
//! (pinned by `tests/prof_golden.rs`). When [`DEMOTE_AFTER`]
//! consecutive rounds execute nothing in parallel, the drain demotes
//! itself: the rest of the kernel runs under the epoch-prefetch driver,
//! which recovers the parallel generation fan-out that narrow-window or
//! remote-heavy kernels would otherwise lose to per-round windowing.
//!
//! See DESIGN.md §13 for the full correctness argument.

use crate::exec::KernelExec;
use crate::shard::{ChipletShard, SectorCtx};
use crate::system::{gen_warp, EngineConsts, EngineState, Event, GpuSystem, SlotCache, WarpCtx};
use ladm_core::par::with_phased_pool;
use ladm_core::topology::NodeId;
use ladm_obs::prof;
use std::cmp::Reverse;
use std::time::Instant;

/// Fan-out cutoff: rounds with fewer window candidates (or a shorter
/// local prefix) than this run serially. A constant, deliberately not a
/// function of the thread count, so round decisions — and the profiler
/// span shape they produce — are identical at any worker count.
pub(crate) const PAR_MIN: usize = 64;

/// Demotion threshold: after this many *consecutive* rounds in which no
/// parallel prefix executed (window under [`PAR_MIN`], or the local
/// prefix cut short by remote/unbound sectors), the drain hands the
/// rest of the kernel to the epoch-prefetch driver
/// (`GpuSystem::run_epochs`), which at least parallelizes generation.
/// Remote-heavy workloads (a GEMM whose every warp step touches a
/// remote B tile, gather-heavy PageRank) would otherwise pay the
/// windowing overhead round after round and forfeit the epoch driver's
/// generation fan-out too. A constant — never derived from the thread
/// count — so the decision point, and the merged span shape, are
/// identical at any worker count.
pub(crate) const DEMOTE_AFTER: u32 = 64;

/// Shared-access capability for the parallel prefix: raw views of the
/// shard array and the warp table handed to pool jobs.
///
/// Safety contract (upheld by `drain_conservative`):
/// * job `j` dereferences `shards.add(j)` only — shards are disjoint;
/// * each warp index appears at most once across the whole prefix
///   (a warp has exactly one in-flight event), so `warps` writes are
///   disjoint too.
struct EngineAccess {
    shards: *mut ChipletShard,
    warps: *mut WarpCtx,
}

// SAFETY: see the disjointness contract on the type.
unsafe impl Sync for EngineAccess {}

impl EngineAccess {
    /// # Safety
    /// Caller must be job `j` — the sole accessor of shard `j`.
    #[allow(clippy::mut_from_ref)]
    unsafe fn shard(&self, j: usize) -> &mut ChipletShard {
        unsafe { &mut *self.shards.add(j) }
    }

    /// # Safety
    /// Warp `w` must belong to the calling job's index list only.
    unsafe fn warp(&self, w: usize) -> WarpCtx {
        unsafe { *self.warps.add(w) }
    }

    /// # Safety
    /// Warp `w` must belong to the calling job's index list only.
    unsafe fn bump_iter(&self, w: usize) {
        unsafe { (*self.warps.add(w)).iter += 1 }
    }
}

impl GpuSystem {
    /// Drains the event heap in conservative windowed rounds, fanning
    /// the local-only event prefix of each window out per shard.
    ///
    /// Preconditions (checked by the caller, `GpuSystem::execute`):
    /// no trace sink, reactive migration disabled, `threads > 1`, and
    /// `0 < delta ≤ k.compute_cycles`.
    pub(crate) fn drain_conservative(
        &mut self,
        eng: &mut EngineState,
        kernel: &dyn KernelExec,
        k: &EngineConsts,
        threads: usize,
        delta: f64,
    ) {
        let topo = self.cfg.topology;
        let nodes = self.shards.len();
        let page_bytes = self.cfg.page_bytes;
        let sector_bytes = self.cfg.l1.sector_bytes;
        let demoted = with_phased_pool(threads, |pool| {
            let mut cand: Vec<Event> = Vec::new();
            let mut barren: u32 = 0;
            while let Some(&Reverse(head)) = eng.heap.peek() {
                if barren >= DEMOTE_AFTER {
                    return true;
                }
                let cap = head.time + delta;
                prof::count("drain.rounds", 1);

                // 1. Window snapshot: every pending event strictly below
                // the cap, popped in canonical order.
                let prof_snapshot = prof::span("snapshot");
                cand.clear();
                while let Some(&Reverse(ev)) = eng.heap.peek() {
                    if ev.time >= cap {
                        break;
                    }
                    cand.push(eng.heap.pop().expect("peeked non-empty").0);
                }
                prof::count("drain.window_events", cand.len() as u64);
                drop(prof_snapshot);

                if cand.len() < PAR_MIN {
                    prof::count("drain.serial_events", cand.len() as u64);
                    let _prof_drain = prof::span("drain");
                    self.replay_serial(eng, kernel, k, &cand, cap);
                    barren += 1;
                    continue;
                }

                // 2. Generation fan-out: fill the slot caches of every
                // candidate that needs one, grouped per shard. Pure with
                // respect to the machine, so thread placement is free;
                // jobs are pinned to the spawned workers so their
                // `gen_worker` spans merge as thread-local roots
                // regardless of claim timing.
                let mut tasks: Vec<Vec<(u32, WarpCtx)>> = vec![Vec::new(); nodes];
                let mut gen_tasks = 0usize;
                for ev in &cand {
                    let ctx = eng.warps[ev.warp as usize];
                    if ctx.iter >= k.trips {
                        continue;
                    }
                    if eng.slots[ev.warp as usize].ready_for(ctx.iter, k.iter_invariant) {
                        continue;
                    }
                    tasks[(ctx.sm / k.sms_per_chiplet) as usize].push((ev.warp, ctx));
                    gen_tasks += 1;
                }
                if gen_tasks > 0 {
                    let prof_fanout = prof::span("gen_fanout");
                    let produced = pool.map_on_workers(nodes, |i| {
                        let _prof_worker = prof::span("gen_worker");
                        let busy = prof::profiling().then(Instant::now);
                        let mut access_buf = Vec::with_capacity(256);
                        let out = tasks[i]
                            .iter()
                            .map(|&(slot, ctx)| {
                                let mut sectors: Vec<(u64, bool)> = Vec::with_capacity(64);
                                let instrs =
                                    gen_warp(kernel, k, ctx, &mut access_buf, &mut sectors);
                                (slot, ctx.iter, instrs, sectors)
                            })
                            .collect::<Vec<_>>();
                        if let Some(t0) = busy {
                            prof::count_named(
                                format!("shard{i:02}.gen_ns"),
                                t0.elapsed().as_nanos() as u64,
                            );
                            prof::count_named(format!("shard{i:02}.gen_tasks"), out.len() as u64);
                        }
                        out
                    });
                    drop(prof_fanout);
                    let _prof_join = prof::span("join");
                    for per_shard in produced {
                        for (slot_idx, iter, instrs, sectors) in per_shard {
                            let slot = &mut eng.slots[slot_idx as usize];
                            slot.valid = true;
                            slot.iter = iter;
                            slot.instrs = instrs;
                            slot.sectors = sectors;
                        }
                    }
                }

                // 3. Classification: the longest prefix of events whose
                // every sector is statically bound to its own shard.
                // `resolve_bound` is pure, and bound pages cannot rebind
                // mid-kernel (migration is excluded by eligibility), so
                // the classification cannot go stale.
                let prof_classify = prof::span("classify");
                let mut b = 0usize;
                for ev in &cand {
                    let ctx = eng.warps[ev.warp as usize];
                    if ctx.iter >= k.trips {
                        break; // retire dispatches new work at `now`
                    }
                    let slot = &eng.slots[ev.warp as usize];
                    if !slot.ready_for(ctx.iter, k.iter_invariant) {
                        break; // defensive: phase 2 fills every candidate
                    }
                    let own = NodeId(ctx.sm / k.sms_per_chiplet);
                    let local = slot
                        .sectors
                        .iter()
                        .all(|&(addr, _)| self.mem.resolve_bound(addr, &topo) == Some(own));
                    if !local {
                        break; // remote / unbound / first-touch sector
                    }
                    b += 1;
                }
                drop(prof_classify);

                let _prof_drain = prof::span("drain");
                if b < PAR_MIN {
                    prof::count("drain.serial_events", cand.len() as u64);
                    self.replay_serial(eng, kernel, k, &cand, cap);
                    barren += 1;
                    continue;
                }
                barren = 0;
                prof::count("drain.parallel_events", b as u64);
                prof::count("drain.serial_events", (cand.len() - b) as u64);
                prof::count("engine.heap_pop", b as u64);
                prof::count("engine.heap_push", b as u64);

                // 4a. Parallel prefix: group by shard (canonical order
                // within each group) and execute on the pool. Each
                // continuation's seq is preassigned to the exact value
                // the serial engine would have used: the serial step of
                // prefix position `i` advances `eng.seq` to
                // `seq0 + 1 + i` before pushing.
                let seq0 = eng.seq;
                let mut per_shard: Vec<Vec<usize>> = vec![Vec::new(); nodes];
                for (i, ev) in cand[..b].iter().enumerate() {
                    let node = eng.warps[ev.warp as usize].sm / k.sms_per_chiplet;
                    per_shard[node as usize].push(i);
                }
                let done = {
                    let prof_par = prof::span("drain_par");
                    let EngineState { warps, slots, .. } = &mut *eng;
                    let acc = EngineAccess {
                        shards: self.shards.as_mut_ptr(),
                        warps: warps.as_mut_ptr(),
                    };
                    let cand_ref: &[Event] = &cand;
                    let slots_ref: &[SlotCache] = slots;
                    let per: &[Vec<usize>] = &per_shard;
                    let results = pool.map(nodes, |j| {
                        let busy = prof::profiling().then(Instant::now);
                        // SAFETY: job `j` is the only accessor of shard
                        // `j` (per-shard grouping above).
                        let shard = unsafe { acc.shard(j) };
                        let mut out = Vec::with_capacity(per[j].len());
                        for &idx in &per[j] {
                            let ev = cand_ref[idx];
                            let w = ev.warp as usize;
                            // SAFETY: a warp has exactly one in-flight
                            // event, so `w` appears in exactly one job's
                            // index list — reads and the write below are
                            // disjoint across jobs.
                            let ctx = unsafe { acc.warp(w) };
                            let t = exec_local(
                                shard,
                                &slots_ref[w],
                                ctx,
                                ev.time,
                                k,
                                page_bytes,
                                sector_bytes,
                            );
                            // SAFETY: as above — sole accessor of `w`.
                            unsafe { acc.bump_iter(w) };
                            out.push((idx, t));
                        }
                        if let Some(t0) = busy {
                            prof::count_named(
                                format!("shard{j:02}.drain_ns"),
                                t0.elapsed().as_nanos() as u64,
                            );
                            prof::count_named(
                                format!("shard{j:02}.drain_events"),
                                per[j].len() as u64,
                            );
                        }
                        out
                    });
                    drop(prof_par);
                    let mut done = vec![0.0f64; b];
                    for per_job in results {
                        for (idx, t) in per_job {
                            done[idx] = t;
                        }
                    }
                    done
                };
                for (i, &t) in done.iter().enumerate() {
                    eng.heap.push(Reverse(Event {
                        time: t,
                        seq: seq0 + 1 + i as u64,
                        warp: cand[i].warp,
                    }));
                }
                eng.seq = seq0 + b as u64;

                // 4b. The window's tail — boundary, retire and unbound
                // events — replays serially in canonical order, together
                // with anything a retire's dispatch queues inside the
                // window.
                self.replay_serial(eng, kernel, k, &cand[b..], cap);
            }
            false
        });

        // Demotion: the window structure is not paying for this kernel
        // (remote-heavy access pattern, or windows too narrow for the
        // fan-out cutoff). Finish the heap under the epoch-prefetch
        // driver so generation at least runs in parallel. Both drivers
        // replay events in exact canonical order, so the hand-off is
        // invisible to `KernelStats`; the decision depends only on the
        // (thread-invariant) event stream and two constants, so it is
        // identical at every worker count.
        if demoted {
            prof::count("drain.demotions", 1);
            self.run_epochs(eng, kernel, k, None, threads);
        }
    }

    /// Re-queues `tail` (preserving each event's original canonical
    /// `(time, seq)` key) and steps the engine serially until the heap's
    /// head reaches `cap`. Also consumes events that serial processing
    /// itself queues inside the window (threadblock dispatch after a
    /// retire).
    fn replay_serial(
        &mut self,
        eng: &mut EngineState,
        kernel: &dyn KernelExec,
        k: &EngineConsts,
        tail: &[Event],
        cap: f64,
    ) {
        for ev in tail {
            eng.heap.push(Reverse(*ev));
        }
        while let Some(&Reverse(head)) = eng.heap.peek() {
            if head.time >= cap {
                break;
            }
            if !self.step(eng, kernel, k, None) {
                break;
            }
        }
    }
}

/// One warp step whose every sector is bound to `shard`'s own memory:
/// the exact serial sequence of `GpuSystem::step` +
/// `GpuSystem::route_sector` for the LOCAL-LOCAL path, minus the
/// (pure, bound-page) home resolution that classification already did.
/// Returns the warp's completion time.
fn exec_local(
    shard: &mut ChipletShard,
    slot: &SlotCache,
    ctx: WarpCtx,
    now: f64,
    k: &EngineConsts,
    page_bytes: u64,
    sector_bytes: u32,
) -> f64 {
    shard.stats.cycles = shard.stats.cycles.max(now);
    let instrs = slot.instrs;
    shard.stats.warp_instructions += instrs;
    let sm_local = (ctx.sm % k.sms_per_chiplet) as usize;
    let sm_state = &mut shard.sms[sm_local];
    let issue = now.max(sm_state.next_issue);
    sm_state.next_issue = issue + k.issue_cost * instrs as f64;
    let mut done = issue + k.compute_cycles;
    for &(sector, write) in slot.sectors.iter() {
        let sctx = SectorCtx {
            issue_t: issue,
            requester: shard.node(),
            page: sector / page_bytes,
            bytes: sector_bytes,
            write,
        };
        let t = if shard.l1_access(sm_local, sector, write, None, &sctx) {
            issue + shard.l1_latency()
        } else {
            let t = shard.xbar_hop(issue + shard.l1_latency(), None);
            shard.local_access(t, sector, write, None, &sctx)
        };
        done = done.max(t);
    }
    done
}
