//! The oracle simulator: a deliberately slow, obviously-correct serial
//! model of the same machine the fast engine simulates.
//!
//! Every component here is the naive textbook version of a fast-path
//! structure in the engine, with none of the memoization the hot path
//! relies on:
//!
//! * [`ReferenceResolver`] — HashMap first-touch/migration side tables
//!   plus a binary search over allocations, vs the flat page-home table
//!   of [`crate::mem::AddressSpace`] (promoted from the `mem` test
//!   module so the differential test and the fuzzer share one reference
//!   implementation);
//! * [`OracleCache`] — an unfused per-set vector-of-ways cache with a
//!   split probe/fill path, vs the packed-metadata single-scan
//!   [`crate::cache::SectoredCache`] with its MRU memo;
//! * [`OracleBucket`] — a bandwidth ledger that walks every bin one at a
//!   time, vs the skip-pointer/path-compressed
//!   [`crate::bw::TokenBucket`];
//! * [`OracleSystem`] — a single global event list scanned linearly for
//!   the minimum `(time, seq)` key, with per-warp sector lists
//!   regenerated from scratch on every iteration, vs the sharded
//!   heap-driven engine with slot caches and epoch prefetch.
//!
//! The oracle intentionally shares **no** stateful code with the engine
//! (only immutable inputs: `SimConfig`, plans, kernels), so a bug in any
//! fast-path optimization shows up as a [`crate::KernelStats`]
//! divergence under `ladm-fuzz`'s differential harness.

use crate::config::{CacheConfig, SimConfig};
use crate::exec::{KernelExec, ThreadAccess};
use crate::mem::{Allocation, HomeLookup, SectorHome};
use crate::stats::KernelStats;
use ladm_core::plan::{KernelPlan, PageMap, RemoteInsert, RrOrder};
use ladm_core::policies::Policy;
use ladm_core::rng::SplitMix64;
use ladm_core::topology::{NodeId, Topology};
use std::collections::{BTreeMap, HashMap, VecDeque};

/// The pre-flat-table resolution path — `partition_point` binary search
/// over allocations plus `first_touch` / `migrated` side HashMaps — kept
/// verbatim as the oracle for the page-home differential test and the
/// fuzzer's oracle machine.
#[derive(Debug)]
pub struct ReferenceResolver {
    page_bytes: u64,
    allocs: Vec<Allocation>,
    first_touch: HashMap<u64, NodeId>,
    migrated: HashMap<u64, NodeId>,
    migration_state: HashMap<u64, (NodeId, u32)>,
    page_faults: u64,
    migrations: u64,
}

impl ReferenceResolver {
    /// Copies the allocation layout of `mem` with empty side tables and
    /// zeroed counters.
    pub fn mirror(mem: &crate::mem::AddressSpace) -> Self {
        ReferenceResolver {
            page_bytes: mem.page_bytes(),
            allocs: mem.allocations().to_vec(),
            first_touch: HashMap::new(),
            migrated: HashMap::new(),
            migration_state: HashMap::new(),
            page_faults: 0,
            migrations: 0,
        }
    }

    /// Applies a kernel plan: one page map + insertion policy per
    /// allocation, clearing first-touch pins and migrations (the fault
    /// counter persists, mirroring `AddressSpace::apply_plan`).
    pub fn apply_plan(&mut self, plan: &KernelPlan) {
        for (alloc, arg) in self.allocs.iter_mut().zip(&plan.args) {
            alloc.page_map = arg.pages.clone();
            alloc.remote_insert = arg.remote_insert;
        }
        self.first_touch.clear();
        self.migrated.clear();
        self.migration_state.clear();
        self.migrations = 0;
    }

    /// The allocation containing `addr`, by binary search.
    ///
    /// # Panics
    ///
    /// Panics if the address is outside every allocation.
    pub fn alloc_of_addr(&self, addr: u64) -> (usize, &Allocation) {
        let i = self
            .allocs
            .partition_point(|a| a.base + a.pages(self.page_bytes) * self.page_bytes <= addr);
        let alloc = self
            .allocs
            .get(i)
            .filter(|a| addr >= a.base)
            .unwrap_or_else(|| panic!("address {addr:#x} is not mapped"));
        (i, alloc)
    }

    /// Resolves the home chiplet of `addr` with `toucher` as the
    /// first-touch candidate, via the side HashMaps.
    pub fn home_of(&mut self, addr: u64, toucher: NodeId, topo: &Topology) -> HomeLookup {
        let page = addr / self.page_bytes;
        if let Some(&node) = self.migrated.get(&page) {
            return HomeLookup {
                node,
                faulted: false,
            };
        }
        let (_, alloc) = self.alloc_of_addr(addr);
        let rel_offset = addr - alloc.base;
        match crate::homes::static_home(&alloc.page_map, rel_offset, self.page_bytes, topo) {
            crate::homes::StaticHome::Node(node) => HomeLookup {
                node,
                faulted: false,
            },
            crate::homes::StaticHome::FirstTouch => match self.first_touch.get(&page) {
                Some(&node) => HomeLookup {
                    node,
                    faulted: false,
                },
                None => {
                    self.first_touch.insert(page, toucher);
                    self.page_faults += 1;
                    HomeLookup {
                        node: toucher,
                        faulted: true,
                    }
                }
            },
        }
    }

    /// Full per-sector resolution: the home node plus the owning
    /// allocation's attributes (the oracle engine's counterpart of
    /// `AddressSpace::resolve`).
    pub fn resolve(&mut self, addr: u64, toucher: NodeId, topo: &Topology) -> SectorHome {
        let look = self.home_of(addr, toucher, topo);
        let (arg, alloc) = self.alloc_of_addr(addr);
        SectorHome {
            node: look.node,
            faulted: look.faulted,
            arg: arg as u32,
            remote_insert: alloc.remote_insert,
        }
    }

    /// Records a remote access for the reactive-migration streak
    /// counter; `true` when the page just migrated to `requester`.
    pub fn record_remote_access(&mut self, addr: u64, requester: NodeId, threshold: u32) -> bool {
        if threshold == 0 {
            return false;
        }
        let page = addr / self.page_bytes;
        let state = self.migration_state.entry(page).or_insert((requester, 0));
        if state.0 == requester {
            state.1 += 1;
        } else {
            *state = (requester, 1);
        }
        if state.1 >= threshold {
            self.migrated.insert(page, requester);
            self.migration_state.remove(&page);
            self.migrations += 1;
            true
        } else {
            false
        }
    }

    /// First-touch page faults taken since construction.
    pub fn page_faults(&self) -> u64 {
        self.page_faults
    }

    /// Pages moved by reactive migration since construction or the last
    /// [`ReferenceResolver::apply_plan`].
    pub fn migrations(&self) -> u64 {
        self.migrations
    }
}

/// Draws a random [`PageMap`], covering every variant (fuzzer and
/// page-table differential test input).
pub fn random_map(rng: &mut SplitMix64, topo: &Topology, alloc_pages: u64) -> PageMap {
    let order = if rng.chance(1, 2) {
        RrOrder::Hierarchical
    } else {
        RrOrder::GpuMajor
    };
    match rng.below(6) {
        0 => PageMap::Fixed(NodeId(rng.range_u32(0, topo.num_nodes() - 1))),
        1 => PageMap::FirstTouch,
        2 => PageMap::Interleave {
            gran_pages: u64::from(rng.range_u32(0, 4)),
            order,
        },
        3 => PageMap::Chunk {
            pages_per_node: u64::from(rng.range_u32(1, 4)),
        },
        4 => PageMap::Spread {
            total_pages: alloc_pages.max(1),
        },
        _ => PageMap::SubPageInterleave {
            gran_bytes: 256 << rng.below(3),
            order,
        },
    }
}

/// Low 56 bits of a line number (mirrors the packed-cache tag width so
/// both models agree on aliasing, however theoretical).
const LINE_MASK: u64 = (1 << 56) - 1;

/// One way of the oracle cache; valid iff `sectors != 0` (a resident
/// line always holds at least the sector that allocated it).
#[derive(Debug, Clone, Copy, Default)]
struct OracleWay {
    line: u64,
    sectors: u64,
    lru: u64,
}

/// Naive sectored set-associative cache: a vector of ways per set,
/// explicit probe/fill split, no MRU memoization. Bit-identical clock,
/// LRU and victim behaviour to [`crate::cache::SectoredCache`].
#[derive(Debug, Clone)]
pub struct OracleCache {
    sets: Vec<Vec<OracleWay>>,
    set_mask: u64,
    line_shift: u32,
    sector_shift: u32,
    clock: u64,
}

impl OracleCache {
    /// Builds an empty cache with the given geometry.
    pub fn new(config: &CacheConfig) -> Self {
        let sets = config.num_sets() as usize;
        OracleCache {
            sets: vec![vec![OracleWay::default(); config.assoc as usize]; sets],
            set_mask: sets as u64 - 1,
            line_shift: config.line_bytes.trailing_zeros(),
            sector_shift: config.sector_bytes.trailing_zeros(),
            clock: 0,
        }
    }

    fn line_of(&self, addr: u64) -> u64 {
        (addr >> self.line_shift) & LINE_MASK
    }

    fn sector_bit(&self, addr: u64) -> u64 {
        let sector_in_line =
            (addr >> self.sector_shift) & ((1 << (self.line_shift - self.sector_shift)) - 1);
        1u64 << sector_in_line
    }

    /// Probes for the sector containing `addr` without filling (LRU is
    /// stamped on hits).
    pub fn probe(&mut self, addr: u64) -> crate::cache::Lookup {
        self.clock += 1;
        let line = self.line_of(addr);
        let bit = self.sector_bit(addr);
        let set = &mut self.sets[(line & self.set_mask) as usize];
        for way in set.iter_mut() {
            if way.sectors != 0 && way.line == line {
                if way.sectors & bit != 0 {
                    way.lru = self.clock;
                    return crate::cache::Lookup::Hit;
                }
                return crate::cache::Lookup::SectorMiss;
            }
        }
        crate::cache::Lookup::LineMiss
    }

    /// Inserts the sector containing `addr`, evicting the invalid-first
    /// / oldest-LRU way when the line is absent (first strict minimum in
    /// way order wins, exactly like the fast cache).
    pub fn fill(&mut self, addr: u64) {
        self.clock += 1;
        let clock = self.clock;
        let line = self.line_of(addr);
        let bit = self.sector_bit(addr);
        let set = &mut self.sets[(line & self.set_mask) as usize];
        let mut victim = usize::MAX;
        let mut victim_key = (2u8, u64::MAX);
        for (i, way) in set.iter_mut().enumerate() {
            if way.sectors != 0 && way.line == line {
                way.sectors |= bit;
                way.lru = clock;
                return;
            }
            let key = if way.sectors != 0 {
                (1, way.lru)
            } else {
                (0, 0)
            };
            if key < victim_key {
                victim_key = key;
                victim = i;
            }
        }
        set[victim] = OracleWay {
            line,
            sectors: bit,
            lru: clock,
        };
    }

    /// Read with allocate-on-miss: probe, then fill on any miss. The
    /// split path advances the clock once in the probe and once in the
    /// fill — exactly the fused path's accounting.
    pub fn access(&mut self, addr: u64) -> crate::cache::Lookup {
        let r = self.probe(addr);
        if r != crate::cache::Lookup::Hit {
            self.fill(addr);
        }
        r
    }

    /// Invalidates the line containing `addr` if present.
    pub fn invalidate(&mut self, addr: u64) {
        let line = self.line_of(addr);
        let set = &mut self.sets[(line & self.set_mask) as usize];
        for way in set.iter_mut() {
            if way.sectors != 0 && way.line == line {
                way.sectors = 0;
                return;
            }
        }
    }
}

/// Accounting-bin width in cycles (mirrors the fast bucket).
const BIN_CYCLES: f64 = 32.0;

/// Bins retained behind the newest referenced bin (mirrors the fast
/// bucket's pruning horizon).
const RETAIN_BINS: usize = 2048;

/// Naive binned bandwidth ledger: walks every bin one at a time with no
/// skip pointers, no drained-watermark and no path compression.
/// Bit-identical departure times to [`crate::bw::TokenBucket`].
#[derive(Debug, Clone)]
pub struct OracleBucket {
    bytes_per_cycle: f64,
    capacity_per_bin: f64,
    bins: VecDeque<f64>,
    first_bin: u64,
}

impl OracleBucket {
    /// Creates a bucket with the given service rate (bytes/cycle).
    ///
    /// # Panics
    ///
    /// Panics if the rate is not positive and finite.
    pub fn new(bytes_per_cycle: f64) -> Self {
        assert!(
            bytes_per_cycle > 0.0 && bytes_per_cycle.is_finite(),
            "bandwidth must be positive and finite"
        );
        OracleBucket {
            bytes_per_cycle,
            capacity_per_bin: bytes_per_cycle * BIN_CYCLES,
            bins: VecDeque::new(),
            first_bin: 0,
        }
    }

    /// Claims the resource for a `bytes`-sized transfer arriving at
    /// `now`; returns the departure time.
    pub fn claim(&mut self, now: f64, bytes: u64) -> f64 {
        let now = now.max(0.0);
        let mut bin = ((now / BIN_CYCLES) as u64).max(self.first_bin);
        let mut remaining = bytes as f64;
        let served = loop {
            let idx = self.bin_idx(bin);
            let cap = self.bins[idx];
            if cap == 0.0 {
                bin += 1;
                continue;
            }
            if cap >= remaining {
                let left = cap - remaining;
                self.bins[idx] = left;
                let fill = 1.0 - left / self.capacity_per_bin;
                let depart_bin = (bin as f64 + fill) * BIN_CYCLES;
                break depart_bin.max(now + bytes as f64 / self.bytes_per_cycle);
            }
            remaining -= cap;
            self.bins[idx] = 0.0;
            bin += 1;
        };
        self.prune(bin);
        served
    }

    fn bin_idx(&mut self, bin: u64) -> usize {
        let idx = (bin - self.first_bin) as usize;
        if idx >= self.bins.len() {
            self.bins.resize(idx + 1, self.capacity_per_bin);
        }
        idx
    }

    fn prune(&mut self, newest: u64) {
        let horizon = newest.saturating_sub(RETAIN_BINS as u64);
        while self.first_bin < horizon && !self.bins.is_empty() {
            self.bins.pop_front();
            self.first_bin += 1;
        }
    }
}

/// Naive shared interconnect: per-GPU ring / switch-egress /
/// switch-ingress [`OracleBucket`]s claimed in the same hop order as
/// [`crate::fabric::Fabric`].
#[derive(Debug)]
pub struct OracleFabric {
    topo: Topology,
    ring: Vec<OracleBucket>,
    switch_out: Vec<OracleBucket>,
    switch_in: Vec<OracleBucket>,
    ring_latency: f64,
    switch_latency: f64,
    inter_chiplet_bytes: u64,
    inter_gpu_bytes: u64,
}

impl OracleFabric {
    /// Builds the fabric for a configuration.
    pub fn new(cfg: &SimConfig) -> Self {
        let gpus = cfg.topology.num_gpus as usize;
        OracleFabric {
            topo: cfg.topology,
            ring: (0..gpus).map(|_| OracleBucket::new(cfg.ring_bw)).collect(),
            switch_out: (0..gpus)
                .map(|_| OracleBucket::new(cfg.switch_bw))
                .collect(),
            switch_in: (0..gpus)
                .map(|_| OracleBucket::new(cfg.switch_bw))
                .collect(),
            ring_latency: cfg.ring_latency as f64,
            switch_latency: cfg.switch_latency as f64,
            inter_chiplet_bytes: 0,
            inter_gpu_bytes: 0,
        }
    }

    /// Routes `bytes` from chiplet `from` to chiplet `to`; returns the
    /// arrival time.
    pub fn route(&mut self, now: f64, from: NodeId, to: NodeId, bytes: u64) -> f64 {
        if from == to {
            return now;
        }
        let fg = self.topo.gpu_of(from).0 as usize;
        let tg = self.topo.gpu_of(to).0 as usize;
        let mut t = now;
        if fg == tg {
            t = self.ring[fg].claim(t, bytes) + self.ring_latency;
            self.inter_chiplet_bytes += bytes;
        } else {
            if self.topo.chiplets_per_gpu > 1 {
                t = self.ring[fg].claim(t, bytes) + self.ring_latency;
            }
            t = self.switch_out[fg].claim(t, bytes) + self.switch_latency;
            t = self.switch_in[tg].claim(t, bytes);
            if self.topo.chiplets_per_gpu > 1 {
                t = self.ring[tg].claim(t, bytes) + self.ring_latency;
            }
            self.inter_gpu_bytes += bytes;
        }
        t
    }
}

#[derive(Debug, Clone, Copy)]
struct OWarp {
    bx: u32,
    by: u32,
    warp: u32,
    iter: u32,
    sm: u32,
    tb: u32,
}

#[derive(Debug, Clone, Copy)]
struct OTb {
    live_warps: u32,
    node: u32,
}

#[derive(Debug, Clone, Copy, Default)]
struct OSm {
    free_tb_slots: u32,
    free_warps: u32,
    next_issue: f64,
}

/// The oracle machine: runs any kernel/policy pair through the naive
/// component models in the same canonical `(time, seq)` event order as
/// the fast engine, producing [`KernelStats`] that must match the
/// engine's bit for bit.
#[derive(Debug)]
pub struct OracleSystem {
    cfg: SimConfig,
}

impl OracleSystem {
    /// Builds the oracle machine for a configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails [`SimConfig::validate`].
    pub fn new(cfg: SimConfig) -> Self {
        cfg.validate();
        OracleSystem { cfg }
    }

    /// The machine configuration.
    pub fn config(&self) -> &SimConfig {
        &self.cfg
    }

    /// Allocates, plans and executes `kernel` under `policy`, returning
    /// statistics that must be bit-identical (under `{:?}` formatting)
    /// to [`crate::GpuSystem::run`] on the same inputs.
    pub fn run(&mut self, kernel: &dyn KernelExec, policy: &dyn Policy) -> KernelStats {
        let launch = kernel.launch();
        let topo = self.cfg.topology;
        let plan = policy.plan(launch, &topo);
        // Allocation layout only: the oracle resolves page homes through
        // the HashMap-based ReferenceResolver, never the flat table.
        let mut mem = crate::mem::AddressSpace::new(self.cfg.page_bytes);
        for (i, arg) in launch.kernel.args.iter().enumerate() {
            mem.alloc(launch.arg_bytes(i).max(1), arg.elem_bytes);
        }
        let mut resolver = ReferenceResolver::mirror(&mem);
        resolver.apply_plan(&plan);
        let addr_tab: Vec<(u64, u64, u64)> = mem
            .allocations()
            .iter()
            .map(|a| (a.base, a.elems, u64::from(a.elem_bytes)))
            .collect();

        let warp_size = self.cfg.warp_size;
        let threads_per_tb = launch.threads_per_tb() as u32;
        let warps_per_tb = threads_per_tb.div_ceil(warp_size).max(1);
        let trips = kernel.trips().max(1);
        let tb_slots_per_sm = self
            .cfg
            .max_tbs_per_sm
            .min(self.cfg.warps_per_sm / warps_per_tb)
            .max(1);
        let warp_budget = self.cfg.warps_per_sm.max(warps_per_tb);
        let nodes = topo.num_nodes() as usize;
        let sms_per_chiplet = self.cfg.sms_per_chiplet;

        let mut eng = OracleEngine {
            kernel,
            resolver,
            topo,
            sms_per_chiplet,
            warps_per_tb,
            trips,
            warp_size,
            compute_cycles: (self.cfg.base_compute_cycles
                * u64::from(kernel.compute_intensity().max(1))) as f64,
            issue_cost: 1.0 / self.cfg.issue_per_cycle,
            sector_mask: !(u64::from(self.cfg.l1.sector_bytes) - 1),
            sector_bytes: u64::from(self.cfg.l1.sector_bytes),
            l1_lat: self.cfg.l1.latency as f64,
            l2_lat: self.cfg.l2.latency as f64,
            dram_lat: self.cfg.dram_latency as f64,
            xbar_lat: self.cfg.intra_chiplet_latency as f64,
            page_fault_cycles: self.cfg.page_fault_cycles as f64,
            migration_threshold: self.cfg.migration_threshold,
            remote_caching: self.cfg.remote_caching,
            page_bytes: self.cfg.page_bytes,
            addr_tab,
            sms: vec![OSm::default(); nodes * sms_per_chiplet as usize],
            queues: vec![VecDeque::new(); nodes],
            l1: (0..nodes * sms_per_chiplet as usize)
                .map(|_| OracleCache::new(&self.cfg.l1))
                .collect(),
            l2: (0..nodes).map(|_| OracleCache::new(&self.cfg.l2)).collect(),
            dram: (0..nodes)
                .map(|_| OracleBucket::new(self.cfg.dram_bw))
                .collect(),
            xbar: (0..nodes)
                .map(|_| OracleBucket::new(self.cfg.intra_chiplet_bw))
                .collect(),
            fabric: OracleFabric::new(&self.cfg),
            warps: Vec::new(),
            free_warp_slots: Vec::new(),
            tbs: Vec::new(),
            free_tb_slots: Vec::new(),
            events: Vec::new(),
            seq: 0,
            stats: KernelStats {
                offnode_by_arg: vec![0; mem.allocations().len()],
                ..KernelStats::default()
            },
            remote_args: 0,
            access_buf: Vec::new(),
        };
        for s in &mut eng.sms {
            *s = OSm {
                free_tb_slots: tb_slots_per_sm,
                free_warps: warp_budget,
                next_issue: 0.0,
            };
        }
        // Same shared dispatch-order helper as the engine: swizzled
        // schedules reorder the walk, and the oracle must stay in
        // lockstep with it.
        for (bx, by) in plan.schedule.dispatch_order(launch.grid) {
            let node = plan.schedule.node_of_tb(bx, by, launch.grid, &topo);
            eng.queues[node.0 as usize].push_back((bx, by));
        }
        for node in 0..topo.num_nodes() {
            eng.dispatch_node(node, 0.0);
        }
        while eng.step() {}
        debug_assert!(eng.queues.iter().all(VecDeque::is_empty));

        let mut stats = eng.stats;
        stats.offnode_by_arg.truncate(eng.remote_args);
        stats.inter_chiplet_bytes = eng.fabric.inter_chiplet_bytes;
        stats.inter_gpu_bytes = eng.fabric.inter_gpu_bytes;
        stats.page_faults = eng.resolver.page_faults();
        stats.page_migrations = eng.resolver.migrations();
        stats
    }
}

/// All mutable state of one oracle execution.
struct OracleEngine<'a> {
    kernel: &'a dyn KernelExec,
    resolver: ReferenceResolver,
    topo: Topology,
    sms_per_chiplet: u32,
    warps_per_tb: u32,
    trips: u32,
    warp_size: u32,
    compute_cycles: f64,
    issue_cost: f64,
    sector_mask: u64,
    sector_bytes: u64,
    l1_lat: f64,
    l2_lat: f64,
    dram_lat: f64,
    xbar_lat: f64,
    page_fault_cycles: f64,
    migration_threshold: u32,
    remote_caching: bool,
    page_bytes: u64,
    addr_tab: Vec<(u64, u64, u64)>,
    sms: Vec<OSm>,
    queues: Vec<VecDeque<(u32, u32)>>,
    l1: Vec<OracleCache>,
    l2: Vec<OracleCache>,
    dram: Vec<OracleBucket>,
    xbar: Vec<OracleBucket>,
    fabric: OracleFabric,
    warps: Vec<OWarp>,
    free_warp_slots: Vec<u32>,
    tbs: Vec<OTb>,
    free_tb_slots: Vec<u32>,
    /// The pending events as a flat `(time, seq, warp)` list; the next
    /// event is found by a linear scan for the minimum key.
    events: Vec<(f64, u64, u32)>,
    seq: u64,
    stats: KernelStats,
    remote_args: usize,
    access_buf: Vec<ThreadAccess>,
}

impl OracleEngine<'_> {
    /// Dispatches threadblocks from node `node`'s queue onto its SMs
    /// until no SM has room for a whole block (same slot-recycling
    /// discipline as the engine, so warp indices match event for event).
    fn dispatch_node(&mut self, node: u32, now: f64) {
        let sm_base = node * self.sms_per_chiplet;
        'outer: while !self.queues[node as usize].is_empty() {
            let mut chosen = None;
            for i in 0..self.sms_per_chiplet {
                let s = &self.sms[(sm_base + i) as usize];
                if s.free_tb_slots > 0 && s.free_warps >= self.warps_per_tb {
                    chosen = Some(i);
                    break;
                }
            }
            let Some(local) = chosen else { break 'outer };
            let sm = sm_base + local;
            let (bx, by) = self.queues[node as usize]
                .pop_front()
                .expect("checked non-empty");
            let sm_state = &mut self.sms[sm as usize];
            sm_state.free_tb_slots -= 1;
            sm_state.free_warps -= self.warps_per_tb;
            let tb_idx = match self.free_tb_slots.pop() {
                Some(i) => {
                    self.tbs[i as usize] = OTb {
                        live_warps: self.warps_per_tb,
                        node,
                    };
                    i
                }
                None => {
                    self.tbs.push(OTb {
                        live_warps: self.warps_per_tb,
                        node,
                    });
                    (self.tbs.len() - 1) as u32
                }
            };
            self.stats.threadblocks += 1;
            for w in 0..self.warps_per_tb {
                let ctx = OWarp {
                    bx,
                    by,
                    warp: w,
                    iter: 0,
                    sm,
                    tb: tb_idx,
                };
                let warp_idx = match self.free_warp_slots.pop() {
                    Some(i) => {
                        self.warps[i as usize] = ctx;
                        i
                    }
                    None => {
                        self.warps.push(ctx);
                        (self.warps.len() - 1) as u32
                    }
                };
                self.seq += 1;
                self.events.push((now, self.seq, warp_idx));
            }
        }
    }

    /// Removes and returns the event with the smallest `(time, seq)` key
    /// by linear scan (`seq` is unique, so the order is strict and
    /// matches the engine's binary heap exactly).
    fn pop_event(&mut self) -> Option<(f64, u64, u32)> {
        if self.events.is_empty() {
            return None;
        }
        let mut best = 0;
        for i in 1..self.events.len() {
            let (t, s, _) = self.events[i];
            let (bt, bs, _) = self.events[best];
            if t.total_cmp(&bt).then(s.cmp(&bs)).is_lt() {
                best = i;
            }
        }
        Some(self.events.swap_remove(best))
    }

    /// Pops and resolves one event; `false` when the list is empty.
    fn step(&mut self) -> bool {
        let Some((now, _, warp)) = self.pop_event() else {
            return false;
        };
        let ctx = self.warps[warp as usize];
        self.stats.cycles = self.stats.cycles.max(now);

        if ctx.iter >= self.trips {
            // Warp retired.
            self.free_warp_slots.push(warp);
            let tb = &mut self.tbs[ctx.tb as usize];
            tb.live_warps -= 1;
            if tb.live_warps == 0 {
                let tb_node = tb.node;
                self.free_tb_slots.push(ctx.tb);
                let sm_state = &mut self.sms[ctx.sm as usize];
                sm_state.free_tb_slots += 1;
                sm_state.free_warps += self.warps_per_tb;
                self.dispatch_node(tb_node, now);
            }
            return true;
        }

        // Always regenerate: the oracle has no slot cache, no
        // iteration-invariant replay and no epoch prefetch.
        let (instrs, sectors) = self.gen_warp(ctx);
        self.stats.warp_instructions += instrs;
        let sm_state = &mut self.sms[ctx.sm as usize];
        let issue = now.max(sm_state.next_issue);
        sm_state.next_issue = issue + self.issue_cost * instrs as f64;

        let mut done = issue + self.compute_cycles;
        for (&sector, &write) in &sectors {
            let t = self.route_sector(issue, ctx.sm, sector, write);
            done = done.max(t);
        }

        self.warps[warp as usize].iter += 1;
        self.seq += 1;
        self.events.push((done, self.seq, warp));
        true
    }

    /// Generates one warp iteration's accesses and coalesces them into
    /// an ordered sector map (`BTreeMap` iteration is ascending by
    /// address, matching the engine's sorted-deduplicated vector; write
    /// flags OR-merge).
    fn gen_warp(&mut self, ctx: OWarp) -> (u64, BTreeMap<u64, bool>) {
        let kernel = self.kernel;
        self.access_buf.clear();
        kernel.warp_accesses((ctx.bx, ctx.by), ctx.warp, ctx.iter, &mut self.access_buf);
        let mut sectors: BTreeMap<u64, bool> = BTreeMap::new();
        for a in &self.access_buf {
            let (base, elems, elem_bytes) = self.addr_tab[usize::from(a.arg)];
            let addr = base + (a.idx % elems) * elem_bytes;
            let entry = sectors.entry(addr & self.sector_mask).or_insert(false);
            *entry |= a.write;
        }
        let mem_instrs = (self.access_buf.len() as u64)
            .div_ceil(u64::from(self.warp_size))
            .max(u64::from(!self.access_buf.is_empty()));
        (1 + mem_instrs, sectors)
    }

    /// Drives one sector through the naive hierarchy starting at `t`;
    /// returns its completion time. Mirrors `GpuSystem::route_sector`
    /// decision for decision.
    fn route_sector(&mut self, t: f64, sm: u32, addr: u64, write: bool) -> f64 {
        let node = NodeId(sm / self.sms_per_chiplet);
        let nid = node.0 as usize;
        let l2_lat = self.l2_lat;

        // L1 (write-through, no write-allocate) and the crossbar hop.
        let t = {
            if write {
                self.l1[sm as usize].invalidate(addr);
                self.stats.l1_misses += 1;
            } else {
                match self.l1[sm as usize].access(addr) {
                    crate::cache::Lookup::Hit => {
                        self.stats.l1_hits += 1;
                        return t + self.l1_lat;
                    }
                    _ => self.stats.l1_misses += 1,
                }
            }
            self.xbar[nid].claim(t + self.l1_lat, self.sector_bytes) + self.xbar_lat
        };

        let home = self.resolver.resolve(addr, node, &self.topo);
        let mut t = t;
        if home.faulted {
            t += self.page_fault_cycles;
        }

        if home.node == node {
            // LOCAL-LOCAL: L2 slice lookup, DRAM fill on miss.
            self.stats.l2_local_local.accesses += 1;
            return match self.l2[nid].access(addr) {
                crate::cache::Lookup::Hit => {
                    self.stats.l2_local_local.hits += 1;
                    t + l2_lat
                }
                _ => {
                    self.stats.dram_sectors += 1;
                    let dram_done = self.dram[nid].claim(t + l2_lat, self.sector_bytes);
                    if write {
                        t + l2_lat
                    } else {
                        dram_done + self.dram_lat
                    }
                }
            };
        }

        let offgpu = !self.topo.same_gpu(home.node, node);
        let arg = home.arg as usize;
        self.remote_args = self.remote_args.max(arg + 1);
        let hid = home.node.0 as usize;
        if self.migration_threshold > 0
            && self
                .resolver
                .record_remote_access(addr, node, self.migration_threshold)
        {
            // Reactive migration: the page crosses the fabric and the
            // triggering sector is served locally (not counted off-node).
            let t = self
                .fabric
                .route(t + l2_lat, home.node, node, self.page_bytes);
            let t = self.dram[nid].claim(t, self.sector_bytes) + self.dram_lat;
            self.l2[nid].fill(addr);
            if !write {
                self.l1[sm as usize].fill(addr);
            }
            return t;
        }

        if write {
            // Write data to the home shard; local copy invalidated.
            self.note_offnode(arg, offgpu);
            self.l2[nid].invalidate(addr);
            let t = self
                .fabric
                .route(t + l2_lat, node, home.node, self.sector_bytes);
            self.stats.l2_remote_local.accesses += 1;
            if self.l2[hid].probe(addr) == crate::cache::Lookup::Hit {
                self.stats.l2_remote_local.hits += 1;
                self.l2[hid].fill(addr);
                t + l2_lat
            } else {
                self.l2[hid].fill(addr);
                self.stats.dram_sectors += 1;
                // Posted write: bandwidth charged, latency hidden.
                self.dram[hid].claim(t + l2_lat, self.sector_bytes)
            }
        } else {
            // LOCAL-REMOTE probe of the requester's own L2 partition.
            if self.remote_caching {
                self.stats.l2_local_remote.accesses += 1;
                if self.l2[nid].probe(addr) == crate::cache::Lookup::Hit {
                    self.stats.l2_local_remote.hits += 1;
                    return t + l2_lat;
                }
            }
            // Header to the home, REMOTE-LOCAL service, data reply back.
            self.note_offnode(arg, offgpu);
            let t = self.fabric.route(t + l2_lat, node, home.node, 8);
            self.stats.l2_remote_local.accesses += 1;
            let reply_t = match self.l2[hid].probe(addr) {
                crate::cache::Lookup::Hit => {
                    self.stats.l2_remote_local.hits += 1;
                    t + l2_lat
                }
                _ => {
                    self.stats.dram_sectors += 1;
                    let t = self.dram[hid].claim(t + l2_lat, self.sector_bytes) + self.dram_lat;
                    if home.remote_insert == RemoteInsert::Twice {
                        self.l2[hid].fill(addr);
                    }
                    t
                }
            };
            let t = self
                .fabric
                .route(reply_t, home.node, node, self.sector_bytes);
            if self.remote_caching {
                self.l2[nid].fill(addr);
            }
            self.l1[sm as usize].fill(addr);
            t
        }
    }

    fn note_offnode(&mut self, arg: usize, offgpu: bool) {
        self.stats.sectors_offnode += 1;
        self.stats.offnode_by_arg[arg] += 1;
        if offgpu {
            self.stats.sectors_offgpu += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bw::TokenBucket;
    use crate::cache::SectoredCache;
    use crate::GpuSystem;
    use ladm_core::analysis::GridShape;
    use ladm_core::expr::{Expr, Var};
    use ladm_core::launch::{ArgStatic, KernelStatic, LaunchInfo};
    use ladm_core::policies::{BaselineRr, BatchFt, KernelWide, Lasp};

    #[test]
    fn oracle_bucket_matches_token_bucket() {
        let mut rng = SplitMix64::new(0xbbbb_0001);
        for trial in 0..50 {
            let rate = [0.5, 1.0, 32.0, 128.57, 1000.0][rng.below(5) as usize];
            let mut fast = TokenBucket::new(rate);
            let mut slow = OracleBucket::new(rate);
            for step in 0..400 {
                // Out-of-order arrivals over a wide window, including
                // claims far in the pruned past.
                let now = rng.next_f64() * 200_000.0 - 100.0;
                let bytes = 1 + rng.below(8192);
                let a = fast.claim(now, bytes);
                let b = slow.claim(now, bytes);
                assert_eq!(
                    a.to_bits(),
                    b.to_bits(),
                    "trial {trial} step {step}: claim({now}, {bytes}) diverged: {a} vs {b}"
                );
            }
        }
    }

    #[test]
    fn oracle_cache_matches_sectored_cache() {
        let mut rng = SplitMix64::new(0xcccc_0002);
        let cfg = CacheConfig {
            bytes: 4096,
            assoc: 4,
            line_bytes: 128,
            sector_bytes: 32,
            latency: 1,
        };
        for trial in 0..50 {
            let mut fast = SectoredCache::new(&cfg);
            let mut slow = OracleCache::new(&cfg);
            for step in 0..2000 {
                // A small address range so sets, lines and sectors all
                // collide frequently.
                let addr = rng.below(512) * 32;
                match rng.below(4) {
                    0 => {
                        let a = fast.probe(addr);
                        let b = slow.probe(addr);
                        assert_eq!(a, b, "trial {trial} step {step}: probe({addr:#x})");
                    }
                    1 => {
                        fast.fill(addr);
                        slow.fill(addr);
                    }
                    2 => {
                        fast.invalidate(addr);
                        slow.invalidate(addr);
                    }
                    _ => {
                        let a = fast.access(addr);
                        let b = slow.access(addr);
                        assert_eq!(a, b, "trial {trial} step {step}: access({addr:#x})");
                    }
                }
            }
        }
    }

    /// Minimal vecadd-style kernel (mirrors the engine's own test
    /// kernel): each thread reads a[i], b[i], writes c[i]; i = bx*bdx+tx.
    #[derive(Debug)]
    struct VecAdd {
        launch: LaunchInfo,
        trips: u32,
    }

    impl VecAdd {
        fn new(blocks: u32, bdx: u32, trips: u32) -> Self {
            let idx = (Expr::var(Var::Bx) * Expr::var(Var::Bdx) + Expr::var(Var::Tx)).to_poly();
            let n = u64::from(blocks) * u64::from(bdx);
            let kernel = KernelStatic {
                name: "vecadd",
                grid_shape: GridShape::OneD,
                args: vec![
                    ArgStatic::read("a", 4, idx.clone()),
                    ArgStatic::read("b", 4, idx.clone()),
                    ArgStatic::write("c", 4, idx),
                ],
            };
            VecAdd {
                launch: LaunchInfo::new(kernel, (blocks, 1), (bdx, 1), vec![n, n, n]),
                trips,
            }
        }
    }

    impl KernelExec for VecAdd {
        fn launch(&self) -> &LaunchInfo {
            &self.launch
        }
        fn trips(&self) -> u32 {
            self.trips
        }
        fn warp_accesses(
            &self,
            tb: (u32, u32),
            warp: u32,
            _iter: u32,
            out: &mut Vec<ThreadAccess>,
        ) {
            let bdx = self.launch.block.0;
            for lane in 0..32u32 {
                let t = warp * 32 + lane;
                if t >= bdx {
                    break;
                }
                let i = u64::from(tb.0) * u64::from(bdx) + u64::from(t);
                out.push(ThreadAccess::load(0, i));
                out.push(ThreadAccess::load(1, i));
                out.push(ThreadAccess::store(2, i));
            }
        }
        fn iter_invariant(&self) -> bool {
            true
        }
    }

    fn assert_oracle_matches(cfg: SimConfig, kernel: &dyn KernelExec, policy: &dyn Policy) {
        let mut fast = GpuSystem::new(cfg.clone());
        fast.set_threads(1);
        let engine = fast.run(kernel, policy);
        let mut slow = OracleSystem::new(cfg);
        let oracle = slow.run(kernel, policy);
        assert_eq!(
            format!("{engine:?}"),
            format!("{oracle:?}"),
            "oracle diverged from engine under policy {}",
            policy.name()
        );
    }

    #[test]
    fn oracle_matches_engine_across_policies() {
        let kernel = VecAdd::new(96, 128, 1);
        for policy in [
            &BaselineRr::new() as &dyn Policy,
            &BatchFt::new(),
            &KernelWide::new(),
            &Lasp::ladm(),
        ] {
            assert_oracle_matches(SimConfig::paper_multi_gpu(), &kernel, policy);
        }
    }

    #[test]
    fn oracle_matches_engine_on_looped_kernels() {
        // trips > 1 exercises the engine's iteration-invariant replay
        // cache, which the oracle must reproduce by regenerating.
        let kernel = VecAdd::new(48, 96, 4);
        assert_oracle_matches(SimConfig::paper_multi_gpu(), &kernel, &BaselineRr::new());
        assert_oracle_matches(SimConfig::monolithic(), &kernel, &KernelWide::new());
    }

    #[test]
    fn oracle_matches_engine_with_migration_and_faults() {
        let kernel = VecAdd::new(64, 128, 2);
        let mut cfg = SimConfig::paper_multi_gpu();
        cfg.migration_threshold = 2;
        cfg.page_fault_cycles = 500;
        cfg.remote_caching = false;
        assert_oracle_matches(cfg, &kernel, &BatchFt::new());
    }

    #[test]
    fn oracle_matches_engine_on_small_topologies() {
        let kernel = VecAdd::new(32, 64, 1);
        assert_oracle_matches(SimConfig::fig4_ring(1400), &kernel, &BaselineRr::new());
        assert_oracle_matches(SimConfig::fig4_xbar(90), &kernel, &Lasp::ladm());
    }
}
