//! # ladm-sim
//!
//! Event-driven, cycle-approximate simulator of a **massive logical GPU**:
//! multiple discrete GPUs behind a switch, each composed of chiplets on an
//! on-package ring, each chiplet with SMs, an L2 partition and local HBM
//! (paper Fig. 1 / Table III).
//!
//! The simulator is the substrate the LADM reproduction runs on, standing
//! in for the paper's GPGPU-Sim/Accel-Sim setup. It models exactly the
//! effects the paper's evaluation depends on:
//!
//! * page→node placement and threadblock→node scheduling (consumed as
//!   [`ladm_core::plan::KernelPlan`]s),
//! * sectored L1/L2 caches with the dynamically-shared-L2 remote-caching
//!   protocol and the RTWICE/RONCE insertion policies,
//! * bandwidth-limited hierarchical interconnect (crossbar / ring /
//!   switch) with FCFS queueing,
//! * HBM channel bandwidth and first-touch page faulting.
//!
//! ## Example
//!
//! ```no_run
//! use ladm_sim::{GpuSystem, SimConfig, KernelExec};
//! use ladm_core::policies::Lasp;
//! # fn kernel() -> Box<dyn KernelExec> { unimplemented!() }
//!
//! let mut sys = GpuSystem::new(SimConfig::paper_multi_gpu());
//! let stats = sys.run(&*kernel(), &Lasp::ladm());
//! println!("off-chip traffic: {:.1}%", stats.offchip_fraction() * 100.0);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod bw;
pub mod cache;
pub mod config;
mod drain;
pub mod exec;
pub mod fabric;
pub mod homes;
pub mod horizon;
pub mod mem;
pub mod oracle;
pub mod session;
pub mod shard;
pub mod stats;
pub mod system;

pub use config::{CacheConfig, SimConfig};
pub use exec::{thread_xy, warp_thread_range, KernelExec, ThreadAccess};
pub use homes::{plan_tb_node, range_is_local, static_home, StaticHome};
pub use oracle::OracleSystem;
pub use session::{replay_independent, SessionSim};
pub use shard::{ChipletShard, RemoteReply, RemoteRequest};
pub use stats::{ClassStats, KernelStats};
pub use system::{GpuSystem, SessionRunStats};
