//! Device address space: allocations, page table and first-touch
//! resolution.
//!
//! Each `cudaMallocManaged` becomes an [`Allocation`] with its own
//! [`PageMap`] (set from the active [`KernelPlan`] at launch time, exactly
//! as LASP re-reads the locality table on every launch). The page table
//! resolves an address to its home chiplet; [`PageMap::FirstTouch`] pages
//! are pinned to the first toucher and the fault is reported so the engine
//! can charge the UVM fault latency.

use ladm_core::plan::{KernelPlan, PageMap, RemoteInsert};
use ladm_core::topology::{NodeId, Topology};
use std::collections::HashMap;

/// Per-page reactive-migration bookkeeping.
#[derive(Debug, Clone, Copy)]
struct MigrationState {
    /// Last remote node observed accessing the page.
    node: NodeId,
    /// Consecutive accesses from that node.
    streak: u32,
}

/// One managed allocation.
#[derive(Debug, Clone)]
pub struct Allocation {
    /// Base device address (page aligned).
    pub base: u64,
    /// Length in bytes.
    pub len_bytes: u64,
    /// Element size in bytes.
    pub elem_bytes: u32,
    /// Active page→node policy.
    pub page_map: PageMap,
    /// Active home-L2 insertion policy.
    pub remote_insert: RemoteInsert,
}

impl Allocation {
    /// Number of pages (for `page_bytes`-sized pages).
    pub fn pages(&self, page_bytes: u64) -> u64 {
        self.len_bytes.div_ceil(page_bytes).max(1)
    }
}

/// The device address space and page table.
#[derive(Debug, Clone)]
pub struct AddressSpace {
    page_bytes: u64,
    allocs: Vec<Allocation>,
    next_base: u64,
    first_touch: HashMap<u64, NodeId>,
    page_faults: u64,
    /// Pages re-pinned by reactive migration (overrides the plan's map).
    migrated: HashMap<u64, NodeId>,
    migration_state: HashMap<u64, MigrationState>,
    migrations: u64,
}

/// Result of a home-node resolution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HomeLookup {
    /// The chiplet owning the page.
    pub node: NodeId,
    /// Whether this access triggered the first-touch fault that placed the
    /// page.
    pub faulted: bool,
}

impl AddressSpace {
    /// Creates an empty address space with the given page size.
    ///
    /// # Panics
    ///
    /// Panics if `page_bytes` is not a power of two.
    pub fn new(page_bytes: u64) -> Self {
        assert!(
            page_bytes.is_power_of_two(),
            "page size must be a power of two"
        );
        AddressSpace {
            page_bytes,
            allocs: Vec::new(),
            // Leave page 0 unused so a zero address is visibly bogus.
            next_base: page_bytes,
            first_touch: HashMap::new(),
            page_faults: 0,
            migrated: HashMap::new(),
            migration_state: HashMap::new(),
            migrations: 0,
        }
    }

    /// Allocates `len_bytes` and returns the allocation index (argument
    /// order). The initial placement is first-touch until a plan is
    /// applied.
    pub fn alloc(&mut self, len_bytes: u64, elem_bytes: u32) -> usize {
        let len = len_bytes.max(1);
        let alloc = Allocation {
            base: self.next_base,
            len_bytes: len,
            elem_bytes,
            page_map: PageMap::FirstTouch,
            remote_insert: RemoteInsert::Twice,
        };
        self.next_base += len.div_ceil(self.page_bytes).max(1) * self.page_bytes;
        self.allocs.push(alloc);
        self.allocs.len() - 1
    }

    /// Applies a kernel plan: one [`PageMap`] + [`RemoteInsert`] per
    /// allocation, in allocation order.
    ///
    /// # Panics
    ///
    /// Panics if the plan's argument count differs from the number of
    /// allocations.
    pub fn apply_plan(&mut self, plan: &KernelPlan) {
        assert_eq!(
            plan.args.len(),
            self.allocs.len(),
            "plan must cover every allocation"
        );
        for (alloc, arg) in self.allocs.iter_mut().zip(&plan.args) {
            alloc.page_map = arg.pages.clone();
            alloc.remote_insert = arg.remote_insert;
        }
        // A new placement supersedes earlier first-touch pinning and any
        // reactive migrations.
        self.first_touch.clear();
        self.migrated.clear();
        self.migration_state.clear();
        self.migrations = 0;
    }

    /// The device address of element `idx` of allocation `arg`.
    /// Out-of-range indices wrap within the allocation (workload
    /// generators use modular extents).
    pub fn addr_of(&self, arg: usize, idx: u64) -> u64 {
        let alloc = &self.allocs[arg];
        let elems = (alloc.len_bytes / u64::from(alloc.elem_bytes)).max(1);
        alloc.base + (idx % elems) * u64::from(alloc.elem_bytes)
    }

    /// The allocation containing `addr`.
    ///
    /// # Panics
    ///
    /// Panics if the address is outside every allocation.
    pub fn alloc_of_addr(&self, addr: u64) -> (usize, &Allocation) {
        // Allocations are contiguous and sorted by construction.
        let i = self
            .allocs
            .partition_point(|a| a.base + a.pages(self.page_bytes) * self.page_bytes <= addr);
        let alloc = self
            .allocs
            .get(i)
            .filter(|a| addr >= a.base)
            .unwrap_or_else(|| panic!("address {addr:#x} is not mapped"));
        (i, alloc)
    }

    /// Resolves the home chiplet of `addr`, with `toucher` as the
    /// first-touch candidate.
    pub fn home_of(&mut self, addr: u64, toucher: NodeId, topo: &Topology) -> HomeLookup {
        let page = addr / self.page_bytes;
        if let Some(&node) = self.migrated.get(&page) {
            return HomeLookup {
                node,
                faulted: false,
            };
        }
        let (_, alloc) = self.alloc_of_addr(addr);
        let rel_offset = addr - alloc.base;
        match alloc.page_map.node_of(rel_offset, self.page_bytes, topo) {
            Some(node) => HomeLookup {
                node,
                faulted: false,
            },
            None => match self.first_touch.get(&page) {
                Some(&node) => HomeLookup {
                    node,
                    faulted: false,
                },
                None => {
                    self.first_touch.insert(page, toucher);
                    self.page_faults += 1;
                    HomeLookup {
                        node: toucher,
                        faulted: true,
                    }
                }
            },
        }
    }

    /// The home-L2 insertion policy governing `addr`.
    pub fn remote_insert_of(&self, addr: u64) -> RemoteInsert {
        self.alloc_of_addr(addr).1.remote_insert
    }

    /// Records a remote access to `addr`'s page from `requester` for the
    /// reactive-migration mechanism; when `threshold` consecutive accesses
    /// arrive from the same node, the page migrates there and `true` is
    /// returned (the caller charges the transfer). `threshold == 0`
    /// disables migration.
    pub fn record_remote_access(&mut self, addr: u64, requester: NodeId, threshold: u32) -> bool {
        if threshold == 0 {
            return false;
        }
        let page = addr / self.page_bytes;
        let state = self.migration_state.entry(page).or_insert(MigrationState {
            node: requester,
            streak: 0,
        });
        if state.node == requester {
            state.streak += 1;
        } else {
            *state = MigrationState {
                node: requester,
                streak: 1,
            };
        }
        if state.streak >= threshold {
            self.migrated.insert(page, requester);
            self.migration_state.remove(&page);
            self.migrations += 1;
            true
        } else {
            false
        }
    }

    /// Pages moved by reactive migration since construction or the last
    /// plan application.
    pub fn migrations(&self) -> u64 {
        self.migrations
    }

    /// Total first-touch page faults since construction or the last
    /// [`AddressSpace::reset_faults`].
    pub fn page_faults(&self) -> u64 {
        self.page_faults
    }

    /// Clears the fault counter (per-kernel accounting).
    pub fn reset_faults(&mut self) {
        self.page_faults = 0;
    }

    /// The configured page size.
    pub fn page_bytes(&self) -> u64 {
        self.page_bytes
    }

    /// All allocations in argument order.
    pub fn allocations(&self) -> &[Allocation] {
        &self.allocs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ladm_core::plan::{ArgPlan, RrOrder, TbMap};

    fn topo() -> Topology {
        Topology::paper_multi_gpu()
    }

    #[test]
    fn allocations_are_page_aligned_and_disjoint() {
        let mut mem = AddressSpace::new(4096);
        let a = mem.alloc(5000, 4);
        let b = mem.alloc(100, 4);
        let alloc_a = &mem.allocations()[a];
        let alloc_b = &mem.allocations()[b];
        assert_eq!(alloc_a.base % 4096, 0);
        assert_eq!(alloc_b.base, alloc_a.base + 8192);
    }

    #[test]
    fn addr_of_wraps_out_of_range() {
        let mut mem = AddressSpace::new(4096);
        let a = mem.alloc(16, 4); // 4 elements
        assert_eq!(mem.addr_of(a, 5), mem.addr_of(a, 1));
    }

    #[test]
    fn home_follows_plan() {
        let mut mem = AddressSpace::new(4096);
        let a = mem.alloc(64 * 4096, 4);
        let plan = KernelPlan {
            args: vec![ArgPlan::new(PageMap::Interleave {
                gran_pages: 1,
                order: RrOrder::Hierarchical,
            })],
            schedule: TbMap::Chunk { per_node: 1 },
        };
        mem.apply_plan(&plan);
        let base = mem.allocations()[a].base;
        let h0 = mem.home_of(base, NodeId(9), &topo());
        let h1 = mem.home_of(base + 4096, NodeId(9), &topo());
        assert_eq!(h0.node, NodeId(0));
        assert!(!h0.faulted);
        assert_eq!(h1.node, NodeId(1));
    }

    #[test]
    fn first_touch_pins_to_toucher_once() {
        let mut mem = AddressSpace::new(4096);
        let a = mem.alloc(4096 * 4, 4);
        let base = mem.allocations()[a].base;
        let h = mem.home_of(base, NodeId(7), &topo());
        assert!(h.faulted);
        assert_eq!(h.node, NodeId(7));
        let h = mem.home_of(base + 8, NodeId(3), &topo());
        assert!(!h.faulted);
        assert_eq!(h.node, NodeId(7));
        assert_eq!(mem.page_faults(), 1);
    }

    #[test]
    fn apply_plan_resets_first_touch() {
        let mut mem = AddressSpace::new(4096);
        let a = mem.alloc(4096, 4);
        let base = mem.allocations()[a].base;
        mem.home_of(base, NodeId(7), &topo());
        let plan = KernelPlan {
            args: vec![ArgPlan::new(PageMap::FirstTouch)],
            schedule: TbMap::Chunk { per_node: 1 },
        };
        mem.apply_plan(&plan);
        let h = mem.home_of(base, NodeId(2), &topo());
        assert!(h.faulted);
        assert_eq!(h.node, NodeId(2));
    }

    #[test]
    fn migration_triggers_after_streak_and_repins() {
        let mut mem = AddressSpace::new(4096);
        let a = mem.alloc(16 * 4096, 4);
        let plan = KernelPlan {
            args: vec![ArgPlan::new(PageMap::Fixed(NodeId(0)))],
            schedule: TbMap::Chunk { per_node: 1 },
        };
        mem.apply_plan(&plan);
        let addr = mem.allocations()[a].base + 4096; // page 1
        assert_eq!(mem.home_of(addr, NodeId(5), &topo()).node, NodeId(0));
        // Two accesses from node 5: threshold 3 not reached.
        assert!(!mem.record_remote_access(addr, NodeId(5), 3));
        assert!(!mem.record_remote_access(addr, NodeId(5), 3));
        // A different node resets the streak.
        assert!(!mem.record_remote_access(addr, NodeId(7), 3));
        assert!(!mem.record_remote_access(addr, NodeId(7), 3));
        assert!(mem.record_remote_access(addr, NodeId(7), 3));
        assert_eq!(mem.migrations(), 1);
        // The page now lives on node 7; other pages are untouched.
        assert_eq!(mem.home_of(addr, NodeId(1), &topo()).node, NodeId(7));
        let other = mem.allocations()[a].base;
        assert_eq!(mem.home_of(other, NodeId(1), &topo()).node, NodeId(0));
    }

    #[test]
    fn migration_disabled_at_zero_threshold() {
        let mut mem = AddressSpace::new(4096);
        mem.alloc(4096, 4);
        let addr = mem.allocations()[0].base;
        for _ in 0..100 {
            assert!(!mem.record_remote_access(addr, NodeId(3), 0));
        }
        assert_eq!(mem.migrations(), 0);
    }

    #[test]
    #[should_panic(expected = "not mapped")]
    fn unmapped_address_panics() {
        let mut mem = AddressSpace::new(4096);
        mem.alloc(4096, 4);
        mem.home_of(0, NodeId(0), &topo()); // page 0 reserved
    }

    #[test]
    #[should_panic(expected = "cover every allocation")]
    fn plan_arg_count_mismatch_panics() {
        let mut mem = AddressSpace::new(4096);
        mem.alloc(4096, 4);
        mem.alloc(4096, 4);
        let plan = KernelPlan {
            args: vec![ArgPlan::new(PageMap::FirstTouch)],
            schedule: TbMap::Chunk { per_node: 1 },
        };
        mem.apply_plan(&plan);
    }
}
