//! Device address space: allocations, the flat page-home table and
//! first-touch resolution.
//!
//! Each `cudaMallocManaged` becomes an [`Allocation`] with its own
//! [`PageMap`] (set from the active [`KernelPlan`] at launch time, exactly
//! as LASP re-reads the locality table on every launch). Resolution is a
//! single bounds-checked index into a **flat page-home table** with one
//! entry per device page, precomputed when the plan is applied: the entry
//! carries the resolved home node (or a first-touch / sub-page sentinel),
//! the owning allocation and its [`RemoteInsert`] policy. First-touch pins
//! and reactive migrations are written back into the same table, so the
//! per-sector hot path never touches a hash map or a binary search.

use ladm_core::plan::{ArgPlan, KernelPlan, PageHomeKind, PageMap, RemoteInsert};
use ladm_core::topology::{NodeId, Topology};

/// [`PageHome::home`] sentinel: placement deferred to the first toucher.
const HOME_FIRST_TOUCH: u32 = u32::MAX;
/// [`PageHome::home`] sentinel: the page is striped below page
/// granularity; resolve the exact address through the owning allocation's
/// [`PageMap::node_of`].
const HOME_SUB_PAGE: u32 = u32::MAX - 1;
/// [`PageHome::arg`] sentinel: the page belongs to no allocation.
const ARG_UNMAPPED: u32 = u32::MAX;

/// One entry of the flat page-home table.
#[derive(Debug, Clone, Copy)]
struct PageHome {
    /// Resolved home node, or one of the `HOME_*` sentinels.
    home: u32,
    /// Owning allocation (argument index), or [`ARG_UNMAPPED`].
    arg: u32,
    /// The owning allocation's home-L2 insertion policy.
    remote_insert: RemoteInsert,
}

const UNMAPPED: PageHome = PageHome {
    home: HOME_FIRST_TOUCH,
    arg: ARG_UNMAPPED,
    remote_insert: RemoteInsert::Twice,
};

/// Per-page reactive-migration bookkeeping (lazily sized: most runs never
/// migrate, so the streak table is only materialized on first use).
#[derive(Debug, Clone, Copy)]
struct MigrationState {
    /// Last remote node observed accessing the page.
    node: u32,
    /// Consecutive accesses from that node.
    streak: u32,
}

const NO_STREAK: MigrationState = MigrationState {
    node: u32::MAX,
    streak: 0,
};

/// One managed allocation.
#[derive(Debug, Clone)]
pub struct Allocation {
    /// Base device address (page aligned).
    pub base: u64,
    /// Length in bytes.
    pub len_bytes: u64,
    /// Element size in bytes.
    pub elem_bytes: u32,
    /// Number of elements (`len_bytes / elem_bytes`, at least 1) —
    /// precomputed so address arithmetic never re-derives it per access.
    pub elems: u64,
    /// Active page→node policy.
    pub page_map: PageMap,
    /// Active home-L2 insertion policy.
    pub remote_insert: RemoteInsert,
}

impl Allocation {
    /// Number of pages (for `page_bytes`-sized pages).
    pub fn pages(&self, page_bytes: u64) -> u64 {
        self.len_bytes.div_ceil(page_bytes).max(1)
    }
}

/// The device address space and page table.
#[derive(Debug, Clone)]
pub struct AddressSpace {
    page_bytes: u64,
    page_shift: u32,
    allocs: Vec<Allocation>,
    next_base: u64,
    /// One entry per device page (page 0 reserved/unmapped).
    page_homes: Vec<PageHome>,
    /// Parallel to `page_homes`; empty until migration tracking starts.
    migration_streaks: Vec<MigrationState>,
    page_faults: u64,
    migrations: u64,
}

/// Result of a home-node resolution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HomeLookup {
    /// The chiplet owning the page.
    pub node: NodeId,
    /// Whether this access triggered the first-touch fault that placed the
    /// page.
    pub faulted: bool,
}

/// Full per-sector resolution: the home node plus the owning-allocation
/// attributes the engine needs, all from one table lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SectorHome {
    /// The chiplet owning the page.
    pub node: NodeId,
    /// Whether this access triggered the first-touch fault that placed the
    /// page.
    pub faulted: bool,
    /// The owning allocation (argument index).
    pub arg: u32,
    /// The owning allocation's home-L2 insertion policy.
    pub remote_insert: RemoteInsert,
}

impl AddressSpace {
    /// Creates an empty address space with the given page size.
    ///
    /// # Panics
    ///
    /// Panics if `page_bytes` is not a power of two.
    pub fn new(page_bytes: u64) -> Self {
        assert!(
            page_bytes.is_power_of_two(),
            "page size must be a power of two"
        );
        AddressSpace {
            page_bytes,
            page_shift: page_bytes.trailing_zeros(),
            allocs: Vec::new(),
            // Leave page 0 unused so a zero address is visibly bogus.
            next_base: page_bytes,
            page_homes: vec![UNMAPPED],
            migration_streaks: Vec::new(),
            page_faults: 0,
            migrations: 0,
        }
    }

    /// Allocates `len_bytes` and returns the allocation index (argument
    /// order). The initial placement is first-touch until a plan is
    /// applied.
    pub fn alloc(&mut self, len_bytes: u64, elem_bytes: u32) -> usize {
        let len = len_bytes.max(1);
        let arg = self.allocs.len() as u32;
        let alloc = Allocation {
            base: self.next_base,
            len_bytes: len,
            elem_bytes,
            elems: (len / u64::from(elem_bytes)).max(1),
            page_map: PageMap::FirstTouch,
            remote_insert: RemoteInsert::Twice,
        };
        let pages = len.div_ceil(self.page_bytes).max(1);
        debug_assert_eq!(
            self.page_homes.len() as u64,
            self.next_base >> self.page_shift,
            "the table covers exactly the pages below next_base"
        );
        self.page_homes.extend((0..pages).map(|_| PageHome {
            home: HOME_FIRST_TOUCH,
            arg,
            remote_insert: RemoteInsert::Twice,
        }));
        self.next_base += pages * self.page_bytes;
        self.allocs.push(alloc);
        self.allocs.len() - 1
    }

    /// Applies a kernel plan: one [`PageMap`] + [`RemoteInsert`] per
    /// allocation, in allocation order. The flat page-home table is
    /// rebuilt from the new maps, which also supersedes earlier
    /// first-touch pinning and reactive migrations.
    ///
    /// # Panics
    ///
    /// Panics if the plan's argument count differs from the number of
    /// allocations.
    pub fn apply_plan(&mut self, plan: &KernelPlan, topo: &Topology) {
        assert_eq!(
            plan.args.len(),
            self.allocs.len(),
            "plan must cover every allocation"
        );
        // Real node ids must stay clear of the table sentinels.
        debug_assert!(topo.num_nodes() < HOME_SUB_PAGE);
        for (alloc, arg) in self.allocs.iter_mut().zip(&plan.args) {
            alloc.page_map = arg.pages.clone();
            alloc.remote_insert = arg.remote_insert;
        }
        self.rebuild_table(topo);
        self.migration_streaks.clear();
        self.migrations = 0;
    }

    /// Applies one argument's plan to a single allocation, leaving every
    /// other allocation's state — first-touch pins, migrated homes,
    /// in-flight streaks — untouched. This is the session-mode
    /// counterpart of [`AddressSpace::apply_plan`]: a launch that
    /// *adopts* an allocation's committed layout never calls it, so the
    /// pages stay exactly where the previous kernels left them.
    ///
    /// Returns the number of already-placed pages whose home changed
    /// (the re-placement cost a replan pays on real hardware; pages
    /// that were still first-touch-unbound move for free).
    pub fn apply_arg_plan(&mut self, idx: usize, arg: &ArgPlan, topo: &Topology) -> u64 {
        debug_assert!(topo.num_nodes() < HOME_SUB_PAGE);
        let alloc = &mut self.allocs[idx];
        alloc.page_map = arg.pages.clone();
        alloc.remote_insert = arg.remote_insert;
        let first = (alloc.base >> self.page_shift) as usize;
        let pages = alloc.pages(self.page_bytes) as usize;
        let map = alloc.page_map.clone();
        let remote_insert = alloc.remote_insert;
        let mut moved = 0u64;
        for (p, entry) in self.page_homes[first..first + pages].iter_mut().enumerate() {
            let home = match map.page_home(p as u64, topo) {
                PageHomeKind::Node(n) => n.0,
                PageHomeKind::FirstTouch => HOME_FIRST_TOUCH,
                PageHomeKind::SubPage => HOME_SUB_PAGE,
            };
            if entry.home < HOME_SUB_PAGE && entry.home != home {
                moved += 1;
            }
            *entry = PageHome {
                home,
                arg: idx as u32,
                remote_insert,
            };
        }
        // Only this allocation's migration streaks reset; other
        // allocations keep their in-flight state.
        if !self.migration_streaks.is_empty() {
            for s in self.migration_streaks.iter_mut().skip(first).take(pages) {
                *s = NO_STREAK;
            }
        }
        moved
    }

    /// Recomputes every table entry from the allocations' current maps.
    fn rebuild_table(&mut self, topo: &Topology) {
        for (i, alloc) in self.allocs.iter().enumerate() {
            let first = (alloc.base >> self.page_shift) as usize;
            let pages = alloc.pages(self.page_bytes) as usize;
            for (p, entry) in self.page_homes[first..first + pages].iter_mut().enumerate() {
                let home = match alloc.page_map.page_home(p as u64, topo) {
                    PageHomeKind::Node(n) => n.0,
                    PageHomeKind::FirstTouch => HOME_FIRST_TOUCH,
                    PageHomeKind::SubPage => HOME_SUB_PAGE,
                };
                *entry = PageHome {
                    home,
                    arg: i as u32,
                    remote_insert: alloc.remote_insert,
                };
            }
        }
    }

    /// The device address of element `idx` of allocation `arg`.
    /// Out-of-range indices wrap within the allocation (workload
    /// generators use modular extents).
    pub fn addr_of(&self, arg: usize, idx: u64) -> u64 {
        let alloc = &self.allocs[arg];
        alloc.base + (idx % alloc.elems) * u64::from(alloc.elem_bytes)
    }

    /// The allocation containing `addr`.
    ///
    /// # Panics
    ///
    /// Panics if the address is outside every allocation.
    pub fn alloc_of_addr(&self, addr: u64) -> (usize, &Allocation) {
        let page = (addr >> self.page_shift) as usize;
        let arg = self.page_homes.get(page).map_or(ARG_UNMAPPED, |e| e.arg);
        if arg == ARG_UNMAPPED {
            panic!("address {addr:#x} is not mapped");
        }
        (arg as usize, &self.allocs[arg as usize])
    }

    /// Resolves the home chiplet of `addr` plus the owning allocation's
    /// attributes, with `toucher` as the first-touch candidate. This is
    /// the per-sector hot path: one bounds-checked table index; only the
    /// cold sentinels (first touch, sub-page striping) do more work.
    ///
    /// # Panics
    ///
    /// Panics if the address is outside every allocation.
    #[inline]
    pub fn resolve(&mut self, addr: u64, toucher: NodeId, topo: &Topology) -> SectorHome {
        let page = (addr >> self.page_shift) as usize;
        let entry = match self.page_homes.get(page) {
            Some(e) if e.arg != ARG_UNMAPPED => *e,
            _ => panic!("address {addr:#x} is not mapped"),
        };
        match entry.home {
            HOME_FIRST_TOUCH => {
                self.page_homes[page].home = toucher.0;
                self.page_faults += 1;
                SectorHome {
                    node: toucher,
                    faulted: true,
                    arg: entry.arg,
                    remote_insert: entry.remote_insert,
                }
            }
            HOME_SUB_PAGE => {
                let alloc = &self.allocs[entry.arg as usize];
                let crate::homes::StaticHome::Node(node) = crate::homes::static_home(
                    &alloc.page_map,
                    addr - alloc.base,
                    self.page_bytes,
                    topo,
                ) else {
                    unreachable!("sub-page maps resolve at byte granularity")
                };
                SectorHome {
                    node,
                    faulted: false,
                    arg: entry.arg,
                    remote_insert: entry.remote_insert,
                }
            }
            home => SectorHome {
                node: NodeId(home),
                faulted: false,
                arg: entry.arg,
                remote_insert: entry.remote_insert,
            },
        }
    }

    /// Pure (no-mutation, `&self`) home lookup for pages that are
    /// already bound: the parallel drain's classification path. Returns
    /// `None` when the address is unmapped or the page still awaits its
    /// first touch — binding mutates the shared table, so such sectors
    /// must take the canonical-order serial path. Sub-page-striped
    /// pages resolve exactly like [`AddressSpace::resolve`] does, via
    /// the pure [`crate::homes::static_home`] function.
    #[inline]
    pub fn resolve_bound(&self, addr: u64, topo: &Topology) -> Option<NodeId> {
        let page = (addr >> self.page_shift) as usize;
        let entry = self.page_homes.get(page)?;
        if entry.arg == ARG_UNMAPPED {
            return None;
        }
        match entry.home {
            HOME_FIRST_TOUCH => None,
            HOME_SUB_PAGE => {
                let alloc = &self.allocs[entry.arg as usize];
                let crate::homes::StaticHome::Node(node) = crate::homes::static_home(
                    &alloc.page_map,
                    addr - alloc.base,
                    self.page_bytes,
                    topo,
                ) else {
                    unreachable!("sub-page maps resolve at byte granularity")
                };
                Some(node)
            }
            home => Some(NodeId(home)),
        }
    }

    /// Resolves the home chiplet of `addr`, with `toucher` as the
    /// first-touch candidate.
    pub fn home_of(&mut self, addr: u64, toucher: NodeId, topo: &Topology) -> HomeLookup {
        let r = self.resolve(addr, toucher, topo);
        HomeLookup {
            node: r.node,
            faulted: r.faulted,
        }
    }

    /// The home-L2 insertion policy governing `addr`.
    pub fn remote_insert_of(&self, addr: u64) -> RemoteInsert {
        self.alloc_of_addr(addr).1.remote_insert
    }

    /// Records a remote access to `addr`'s page from `requester` for the
    /// reactive-migration mechanism; when `threshold` consecutive accesses
    /// arrive from the same node, the page migrates there and `true` is
    /// returned (the caller charges the transfer). `threshold == 0`
    /// disables migration.
    pub fn record_remote_access(&mut self, addr: u64, requester: NodeId, threshold: u32) -> bool {
        if threshold == 0 {
            return false;
        }
        let page = (addr >> self.page_shift) as usize;
        if self.migration_streaks.len() < self.page_homes.len() {
            self.migration_streaks
                .resize(self.page_homes.len(), NO_STREAK);
        }
        let Some(state) = self.migration_streaks.get_mut(page) else {
            panic!("address {addr:#x} is not mapped");
        };
        if state.node == requester.0 {
            state.streak += 1;
        } else {
            *state = MigrationState {
                node: requester.0,
                streak: 1,
            };
        }
        if state.streak >= threshold {
            *state = NO_STREAK;
            // Re-pin the page in the table (overriding the plan's map,
            // like the old side `migrated` map did).
            self.page_homes[page].home = requester.0;
            self.migrations += 1;
            true
        } else {
            false
        }
    }

    /// Pages moved by reactive migration since construction or the last
    /// plan application.
    pub fn migrations(&self) -> u64 {
        self.migrations
    }

    /// Total first-touch page faults since construction or the last
    /// [`AddressSpace::reset_faults`].
    pub fn page_faults(&self) -> u64 {
        self.page_faults
    }

    /// Clears the fault counter (per-kernel accounting).
    pub fn reset_faults(&mut self) {
        self.page_faults = 0;
    }

    /// The configured page size.
    pub fn page_bytes(&self) -> u64 {
        self.page_bytes
    }

    /// All allocations in argument order.
    pub fn allocations(&self) -> &[Allocation] {
        &self.allocs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::{random_map, ReferenceResolver};
    use ladm_core::plan::{ArgPlan, RrOrder, TbMap};
    use ladm_core::rng::SplitMix64;

    fn topo() -> Topology {
        Topology::paper_multi_gpu()
    }

    #[test]
    fn allocations_are_page_aligned_and_disjoint() {
        let mut mem = AddressSpace::new(4096);
        let a = mem.alloc(5000, 4);
        let b = mem.alloc(100, 4);
        let alloc_a = &mem.allocations()[a];
        let alloc_b = &mem.allocations()[b];
        assert_eq!(alloc_a.base % 4096, 0);
        assert_eq!(alloc_b.base, alloc_a.base + 8192);
    }

    #[test]
    fn addr_of_wraps_out_of_range() {
        let mut mem = AddressSpace::new(4096);
        let a = mem.alloc(16, 4); // 4 elements
        assert_eq!(mem.addr_of(a, 5), mem.addr_of(a, 1));
    }

    #[test]
    fn home_follows_plan() {
        let mut mem = AddressSpace::new(4096);
        let a = mem.alloc(64 * 4096, 4);
        let plan = KernelPlan {
            args: vec![ArgPlan::new(PageMap::Interleave {
                gran_pages: 1,
                order: RrOrder::Hierarchical,
            })],
            schedule: TbMap::Chunk { per_node: 1 },
        };
        mem.apply_plan(&plan, &topo());
        let base = mem.allocations()[a].base;
        let h0 = mem.home_of(base, NodeId(9), &topo());
        let h1 = mem.home_of(base + 4096, NodeId(9), &topo());
        assert_eq!(h0.node, NodeId(0));
        assert!(!h0.faulted);
        assert_eq!(h1.node, NodeId(1));
    }

    #[test]
    fn first_touch_pins_to_toucher_once() {
        let mut mem = AddressSpace::new(4096);
        let a = mem.alloc(4096 * 4, 4);
        let base = mem.allocations()[a].base;
        let h = mem.home_of(base, NodeId(7), &topo());
        assert!(h.faulted);
        assert_eq!(h.node, NodeId(7));
        let h = mem.home_of(base + 8, NodeId(3), &topo());
        assert!(!h.faulted);
        assert_eq!(h.node, NodeId(7));
        assert_eq!(mem.page_faults(), 1);
    }

    #[test]
    fn apply_plan_resets_first_touch() {
        let mut mem = AddressSpace::new(4096);
        let a = mem.alloc(4096, 4);
        let base = mem.allocations()[a].base;
        mem.home_of(base, NodeId(7), &topo());
        let plan = KernelPlan {
            args: vec![ArgPlan::new(PageMap::FirstTouch)],
            schedule: TbMap::Chunk { per_node: 1 },
        };
        mem.apply_plan(&plan, &topo());
        let h = mem.home_of(base, NodeId(2), &topo());
        assert!(h.faulted);
        assert_eq!(h.node, NodeId(2));
    }

    #[test]
    fn migration_triggers_after_streak_and_repins() {
        let mut mem = AddressSpace::new(4096);
        let a = mem.alloc(16 * 4096, 4);
        let plan = KernelPlan {
            args: vec![ArgPlan::new(PageMap::Fixed(NodeId(0)))],
            schedule: TbMap::Chunk { per_node: 1 },
        };
        mem.apply_plan(&plan, &topo());
        let addr = mem.allocations()[a].base + 4096; // page 1
        assert_eq!(mem.home_of(addr, NodeId(5), &topo()).node, NodeId(0));
        // Two accesses from node 5: threshold 3 not reached.
        assert!(!mem.record_remote_access(addr, NodeId(5), 3));
        assert!(!mem.record_remote_access(addr, NodeId(5), 3));
        // A different node resets the streak.
        assert!(!mem.record_remote_access(addr, NodeId(7), 3));
        assert!(!mem.record_remote_access(addr, NodeId(7), 3));
        assert!(mem.record_remote_access(addr, NodeId(7), 3));
        assert_eq!(mem.migrations(), 1);
        // The page now lives on node 7; other pages are untouched.
        assert_eq!(mem.home_of(addr, NodeId(1), &topo()).node, NodeId(7));
        let other = mem.allocations()[a].base;
        assert_eq!(mem.home_of(other, NodeId(1), &topo()).node, NodeId(0));
    }

    #[test]
    fn migration_disabled_at_zero_threshold() {
        let mut mem = AddressSpace::new(4096);
        mem.alloc(4096, 4);
        let addr = mem.allocations()[0].base;
        for _ in 0..100 {
            assert!(!mem.record_remote_access(addr, NodeId(3), 0));
        }
        assert_eq!(mem.migrations(), 0);
    }

    #[test]
    fn resolve_reports_owning_arg_and_insert_policy() {
        let mut mem = AddressSpace::new(4096);
        mem.alloc(2 * 4096, 4);
        mem.alloc(4096, 4);
        let plan = KernelPlan {
            args: vec![
                ArgPlan::new(PageMap::Fixed(NodeId(2))),
                ArgPlan {
                    pages: PageMap::Fixed(NodeId(5)),
                    remote_insert: RemoteInsert::Once,
                },
            ],
            schedule: TbMap::Chunk { per_node: 1 },
        };
        mem.apply_plan(&plan, &topo());
        let a0 = mem.allocations()[0].base;
        let a1 = mem.allocations()[1].base;
        let h0 = mem.resolve(a0 + 4096, NodeId(0), &topo());
        assert_eq!(h0.node, NodeId(2));
        assert_eq!(h0.arg, 0);
        assert_eq!(h0.remote_insert, RemoteInsert::Twice);
        let h1 = mem.resolve(a1, NodeId(0), &topo());
        assert_eq!(h1.node, NodeId(5));
        assert_eq!(h1.arg, 1);
        assert_eq!(h1.remote_insert, RemoteInsert::Once);
        assert_eq!(mem.remote_insert_of(a1), RemoteInsert::Once);
        assert_eq!(mem.alloc_of_addr(a0 + 4096).0, 0);
        assert_eq!(mem.alloc_of_addr(a1).0, 1);
    }

    #[test]
    fn resolve_bound_is_pure_and_agrees_with_resolve() {
        let mut mem = AddressSpace::new(4096);
        mem.alloc(4 * 4096, 4);
        mem.alloc(4096, 4);
        let plan = KernelPlan {
            args: vec![
                ArgPlan::new(PageMap::SubPageInterleave {
                    gran_bytes: 1024,
                    order: RrOrder::Hierarchical,
                }),
                ArgPlan::new(PageMap::FirstTouch),
            ],
            schedule: TbMap::Chunk { per_node: 1 },
        };
        mem.apply_plan(&plan, &topo());
        let a0 = mem.allocations()[0].base;
        let a1 = mem.allocations()[1].base;
        // Sub-page interleaving resolves purely, matching resolve().
        for off in [0u64, 1024, 4096 + 2048, 3 * 4096] {
            let expect = mem.clone().resolve(a0 + off, NodeId(9), &topo()).node;
            assert_eq!(mem.resolve_bound(a0 + off, &topo()), Some(expect));
        }
        // First-touch pages are unbound — classification must defer —
        // and the probe itself must not bind or fault anything.
        assert_eq!(mem.resolve_bound(a1, &topo()), None);
        assert_eq!(mem.page_faults(), 0);
        // Once canonically bound, the pure path sees the binding.
        let h = mem.resolve(a1, NodeId(3), &topo());
        assert!(h.faulted);
        assert_eq!(mem.resolve_bound(a1, &topo()), Some(NodeId(3)));
        // Out-of-range addresses report None instead of panicking.
        assert_eq!(mem.resolve_bound(a1 + (1 << 40), &topo()), None);
    }

    /// Differential oracle: the flat page-home table must agree with the
    /// removed HashMap + binary-search path on randomized plans covering
    /// every `PageMap` variant, first-touch orderings and migration
    /// streaks crossing the threshold — including interleaved re-plans.
    #[test]
    fn flat_table_matches_reference_resolver() {
        let t = topo();
        let mut rng = SplitMix64::new(0x1adb_00c5);
        for trial in 0..40 {
            let page_bytes = 4096u64;
            let mut mem = AddressSpace::new(page_bytes);
            let num_args = 1 + rng.below(4) as usize;
            for _ in 0..num_args {
                let elem_bytes = [1u32, 4, 8][rng.below(3) as usize];
                let len = u64::from(rng.range_u32(1, 20)) * 1024;
                mem.alloc(len, elem_bytes);
            }
            let mut reference = ReferenceResolver::mirror(&mem);
            let make_plan = |rng: &mut SplitMix64, mem: &AddressSpace| KernelPlan {
                args: mem
                    .allocations()
                    .iter()
                    .map(|a| ArgPlan {
                        pages: random_map(rng, &t, a.pages(page_bytes)),
                        remote_insert: if rng.chance(1, 2) {
                            RemoteInsert::Twice
                        } else {
                            RemoteInsert::Once
                        },
                    })
                    .collect(),
                schedule: TbMap::Chunk { per_node: 1 },
            };
            let plan = make_plan(&mut rng, &mem);
            mem.apply_plan(&plan, &t);
            reference.apply_plan(&plan);
            let lo = mem.allocations()[0].base;
            let hi = mem.allocations().last().unwrap().base
                + mem.allocations().last().unwrap().pages(page_bytes) * page_bytes;
            let threshold = rng.below(4) as u32; // 0 disables migration
            for step in 0..600 {
                let addr = rng.range_i64(lo as i64, hi as i64 - 1) as u64;
                let node = NodeId(rng.range_u32(0, t.num_nodes() - 1));
                let got = mem.resolve(addr, node, &t);
                let want = reference.home_of(addr, node, &t);
                assert_eq!(
                    (got.node, got.faulted),
                    (want.node, want.faulted),
                    "trial {trial} step {step}: resolve({addr:#x}) diverged"
                );
                let (want_arg, want_alloc) = reference.alloc_of_addr(addr);
                assert_eq!(got.arg as usize, want_arg);
                assert_eq!(got.remote_insert, want_alloc.remote_insert);
                // Hammer migration streaks on remote resolutions, exactly
                // like route_sector does.
                if got.node != node {
                    let migrated = mem.record_remote_access(addr, node, threshold);
                    let migrated_ref = reference.record_remote_access(addr, node, threshold);
                    assert_eq!(migrated, migrated_ref, "trial {trial} step {step}");
                }
                // Occasionally re-plan mid-stream: pins and migrations
                // must reset identically.
                if step % 200 == 199 && rng.chance(1, 2) {
                    let plan = make_plan(&mut rng, &mem);
                    mem.apply_plan(&plan, &t);
                    reference.apply_plan(&plan);
                }
            }
            assert_eq!(mem.page_faults(), reference.page_faults(), "trial {trial}");
            assert_eq!(mem.migrations(), reference.migrations(), "trial {trial}");
        }
    }

    #[test]
    #[should_panic(expected = "not mapped")]
    fn unmapped_address_panics() {
        let mut mem = AddressSpace::new(4096);
        mem.alloc(4096, 4);
        mem.home_of(0, NodeId(0), &topo()); // page 0 reserved
    }

    #[test]
    #[should_panic(expected = "not mapped")]
    fn address_past_last_allocation_panics() {
        let mut mem = AddressSpace::new(4096);
        mem.alloc(4096, 4);
        mem.home_of(1 << 40, NodeId(0), &topo());
    }

    #[test]
    #[should_panic(expected = "cover every allocation")]
    fn plan_arg_count_mismatch_panics() {
        let mut mem = AddressSpace::new(4096);
        mem.alloc(4096, 4);
        mem.alloc(4096, 4);
        let plan = KernelPlan {
            args: vec![ArgPlan::new(PageMap::FirstTouch)],
            schedule: TbMap::Chunk { per_node: 1 },
        };
        mem.apply_plan(&plan, &topo());
    }
}
