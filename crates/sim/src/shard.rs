//! Per-chiplet engine shard: the machine's NUMA structure as code
//! structure.
//!
//! A [`ChipletShard`] owns everything private to one chiplet — its SMs'
//! execution state, the SM-private L1s, the chiplet's L2 slice, its HBM
//! channel, its SM↔L2 crossbar and the threadblock dispatch queue — plus
//! the per-shard [`KernelStats`] those components feed. Nothing a shard
//! owns is touched by any other shard.
//!
//! Everything a shard *cannot* decide alone crosses the boundary as an
//! explicit message or a coordinator-owned resource:
//!
//! * a remote-homed access arrives at its home shard as a
//!   [`RemoteRequest`] and is answered with a [`RemoteReply`]
//!   (remote-L2 probe under RTWICE/RONCE + home-DRAM claim),
//! * inter-chiplet / inter-GPU hops claim the coordinator's
//!   `Fabric` buckets between the two shard touches,
//! * first-touch page binding goes through the coordinator's shared
//!   `AddressSpace` page-home table.
//!
//! The coordinator resolves these in canonical global event order, so
//! the sharded engine is bit-identical to the former monolithic one —
//! and the *pure* part of each warp step (access generation +
//! coalescing) can run on worker threads between epoch barriers without
//! perturbing any result (see `GpuSystem::run_epochs`).

use crate::bw::TokenBucket;
use crate::cache::{Lookup, SectoredCache};
use crate::config::SimConfig;
use crate::stats::KernelStats;
use ladm_core::plan::RemoteInsert;
use ladm_core::topology::NodeId;
use ladm_obs::{prof, Event as TraceEvent, LinkLevel, SectorRoute, TraceSink};
use std::collections::VecDeque;

/// Execution state of one SM: free threadblock/warp slots and the issue
/// port's next-available cycle.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct SmState {
    pub free_tb_slots: u32,
    pub free_warps: u32,
    pub next_issue: f64,
}

/// Shared per-sector event context threaded through shard methods so
/// trace emission stays identical to the monolithic engine (one
/// `Sector` event per L1 probe, stamped with the *issue* time).
#[derive(Debug, Clone, Copy)]
pub(crate) struct SectorCtx {
    /// The sector's issue time (all `Sector` events carry it).
    pub issue_t: f64,
    /// Requesting chiplet.
    pub requester: NodeId,
    /// Page index of the sector.
    pub page: u64,
    /// Sector payload bytes.
    pub bytes: u32,
    /// Whether the access is a store.
    pub write: bool,
}

impl SectorCtx {
    /// Reports the sector's terminal service point.
    pub(crate) fn emit(&self, sink: Option<&dyn TraceSink>, route: SectorRoute, home: NodeId) {
        if let Some(s) = sink {
            s.record(TraceEvent::Sector {
                time: self.issue_t,
                node: self.requester.0 as u16,
                home: home.0 as u16,
                route,
                write: self.write,
                page: self.page,
                bytes: self.bytes,
            });
        }
    }
}

/// Reports a DRAM-channel claim at chiplet `at`.
fn emit_dram(sink: Option<&dyn TraceSink>, at: NodeId, time: f64, bytes: u32) {
    if let Some(s) = sink {
        s.record(TraceEvent::LinkTransfer {
            time,
            level: LinkLevel::Dram,
            index: at.0 as u16,
            bytes,
        });
    }
}

/// A cross-shard memory request: a sector whose home chiplet is not the
/// requester's, delivered to the home shard after the coordinator
/// charged the fabric hops. The home shard serves it against its own L2
/// slice and DRAM channel ([`ChipletShard::serve_remote`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RemoteRequest {
    /// Sector address.
    pub addr: u64,
    /// Store (posted write) vs load.
    pub write: bool,
    /// Arrival time at the home shard (after fabric hops).
    pub t: f64,
    /// The owning allocation's home-L2 insertion policy (RTWICE/RONCE).
    pub insert: RemoteInsert,
}

/// The home shard's answer to a [`RemoteRequest`]: when the data (or
/// write acknowledgement point) was ready at the home service point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RemoteReply {
    /// Completion time at the home shard (L2 hit or DRAM fill; posted
    /// writes complete at the bandwidth-claim point).
    pub t: f64,
    /// Whether the home L2 slice had the sector.
    pub l2_hit: bool,
}

/// One chiplet's private slice of the machine: SMs, L1s, L2 partition,
/// HBM channel, SM↔L2 crossbar, threadblock queue and statistics.
///
/// Within one simulated kernel, only this shard mutates any of it; the
/// coordinator (`GpuSystem`) reaches in strictly between events of the
/// canonical global order, so shards never race even under the threaded
/// epoch driver.
#[derive(Debug)]
pub struct ChipletShard {
    node: NodeId,
    /// SM-private L1s, indexed by SM-local index (`sm % sms_per_chiplet`).
    l1: Vec<SectoredCache>,
    /// This chiplet's L2 slice.
    l2: SectoredCache,
    /// This chiplet's HBM channel.
    dram: TokenBucket,
    /// This chiplet's SM↔L2 crossbar.
    xbar: TokenBucket,
    l1_latency: f64,
    l2_latency: f64,
    dram_latency: f64,
    xbar_latency: f64,
    sector_bytes: u64,
    pub(crate) sms: Vec<SmState>,
    /// Threadblocks scheduled to this chiplet, in dispatch order.
    pub(crate) queue: VecDeque<(u32, u32)>,
    /// This shard's slice of the kernel statistics; merged across
    /// shards in id order by the coordinator (`KernelStats::merge_shard`).
    pub(crate) stats: KernelStats,
    /// `1 + highest` argument index that saw off-node traffic from this
    /// shard (the coordinator truncates `offnode_by_arg` to the max).
    pub(crate) remote_args: usize,
}

impl ChipletShard {
    /// Builds the shard for chiplet `node` of `cfg`'s machine.
    pub(crate) fn new(cfg: &SimConfig, node: NodeId) -> Self {
        ChipletShard {
            node,
            l1: (0..cfg.sms_per_chiplet)
                .map(|_| SectoredCache::new(&cfg.l1))
                .collect(),
            l2: SectoredCache::new(&cfg.l2),
            dram: TokenBucket::new(cfg.dram_bw),
            xbar: TokenBucket::new(cfg.intra_chiplet_bw),
            l1_latency: cfg.l1.latency as f64,
            l2_latency: cfg.l2.latency as f64,
            dram_latency: cfg.dram_latency as f64,
            xbar_latency: cfg.intra_chiplet_latency as f64,
            sector_bytes: u64::from(cfg.l1.sector_bytes),
            sms: vec![SmState::default(); cfg.sms_per_chiplet as usize],
            queue: VecDeque::new(),
            stats: KernelStats::default(),
            remote_args: 0,
        }
    }

    /// The chiplet this shard models.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// This shard's slice of the current kernel's statistics.
    pub fn stats(&self) -> &KernelStats {
        &self.stats
    }

    /// Flushes caches and bandwidth ledgers (kernel boundary).
    pub(crate) fn flush(&mut self) {
        for c in &mut self.l1 {
            c.flush();
        }
        self.l2.flush();
        self.dram.reset();
        self.xbar.reset();
    }

    /// Resets execution state for a new kernel: fresh stats (with the
    /// off-node attribution vector pre-sized to `args`) and full
    /// threadblock/warp slot budgets on every SM.
    pub(crate) fn begin_kernel(&mut self, args: usize, tb_slots_per_sm: u32, warp_budget: u32) {
        self.stats = KernelStats {
            offnode_by_arg: vec![0; args],
            ..KernelStats::default()
        };
        self.remote_args = 0;
        for s in &mut self.sms {
            *s = SmState {
                free_tb_slots: tb_slots_per_sm,
                free_warps: warp_budget,
                next_issue: 0.0,
            };
        }
        self.queue.clear();
    }

    /// L1 lookup for the SM-local cache `sm_local`: write-through /
    /// no-write-allocate. Returns `true` on a read hit (the sector is
    /// done — the caller adds the L1 latency).
    pub(crate) fn l1_access(
        &mut self,
        sm_local: usize,
        addr: u64,
        write: bool,
        sink: Option<&dyn TraceSink>,
        ctx: &SectorCtx,
    ) -> bool {
        prof::count("shard.l1_probes", 1);
        if write {
            self.l1[sm_local].invalidate(addr);
            self.stats.l1_misses += 1;
            return false;
        }
        match self.l1[sm_local].access(addr) {
            Lookup::Hit => {
                self.stats.l1_hits += 1;
                ctx.emit(sink, SectorRoute::L1Hit, self.node);
                true
            }
            _ => {
                self.stats.l1_misses += 1;
                false
            }
        }
    }

    /// Claims one sector on this chiplet's SM↔L2 crossbar; returns the
    /// arrival time at the L2 slice.
    pub(crate) fn xbar_hop(&mut self, now: f64, sink: Option<&dyn TraceSink>) -> f64 {
        if let Some(s) = sink {
            s.record(TraceEvent::LinkTransfer {
                time: now,
                level: LinkLevel::Xbar,
                index: self.node.0 as u16,
                bytes: self.sector_bytes as u32,
            });
        }
        self.xbar.claim(now, self.sector_bytes) + self.xbar_latency
    }

    /// LOCAL-LOCAL service: the sector's home is this chiplet. L2 slice
    /// lookup, DRAM fill on miss (posted writes hide the fill latency).
    pub(crate) fn local_access(
        &mut self,
        t: f64,
        addr: u64,
        write: bool,
        sink: Option<&dyn TraceSink>,
        ctx: &SectorCtx,
    ) -> f64 {
        prof::count("shard.l2_probes", 1);
        self.stats.l2_local_local.accesses += 1;
        match self.l2.access(addr) {
            Lookup::Hit => {
                self.stats.l2_local_local.hits += 1;
                ctx.emit(sink, SectorRoute::L2LocalHit, self.node);
                t + self.l2_latency
            }
            _ => {
                self.stats.dram_sectors += 1;
                ctx.emit(sink, SectorRoute::DramLocal, self.node);
                emit_dram(sink, self.node, t + self.l2_latency, ctx.bytes);
                let dram_done = self.dram.claim(t + self.l2_latency, self.sector_bytes);
                if write {
                    // Posted write: bandwidth charged, latency hidden.
                    t + self.l2_latency
                } else {
                    dram_done + self.dram_latency
                }
            }
        }
    }

    /// Remote-caching probe of this (requester) shard's own L2 for a
    /// *remote-homed* sector — the dynamically-shared L2 checks the
    /// local partition before going off-chiplet. `Some(done)` on a hit.
    pub(crate) fn probe_remote_cached(
        &mut self,
        t: f64,
        addr: u64,
        home: NodeId,
        sink: Option<&dyn TraceSink>,
        ctx: &SectorCtx,
    ) -> Option<f64> {
        prof::count("shard.l2_probes", 1);
        self.stats.l2_local_remote.accesses += 1;
        if self.l2.probe(addr) == Lookup::Hit {
            self.stats.l2_local_remote.hits += 1;
            ctx.emit(sink, SectorRoute::L2RemoteCachedHit, home);
            Some(t + self.l2_latency)
        } else {
            None
        }
    }

    /// Raises the off-node attribution watermark to cover `arg`
    /// (migrated sectors raise it without counting as off-node traffic,
    /// matching the reference engine).
    pub(crate) fn raise_arg_watermark(&mut self, arg: usize) {
        self.remote_args = self.remote_args.max(arg + 1);
    }

    /// Counts one off-node sector leaving this shard.
    pub(crate) fn note_offnode(&mut self, arg: usize, offgpu: bool) {
        self.stats.sectors_offnode += 1;
        self.stats.offnode_by_arg[arg] += 1;
        if offgpu {
            self.stats.sectors_offgpu += 1;
        }
    }

    /// Invalidates a sector in this shard's L2 slice (remote write:
    /// the stale local copy, if any, dies).
    pub(crate) fn invalidate_l2(&mut self, addr: u64) {
        self.l2.invalidate(addr);
    }

    /// Completes a reactive page migration that just arrived over the
    /// fabric at `t`: the triggering sector fills from the (now local)
    /// DRAM and is installed in this shard's L2/L1.
    pub(crate) fn migrate_in(
        &mut self,
        t: f64,
        sm_local: usize,
        addr: u64,
        write: bool,
        sink: Option<&dyn TraceSink>,
        ctx: &SectorCtx,
    ) -> f64 {
        emit_dram(sink, self.node, t, ctx.bytes);
        let t = self.dram.claim(t, self.sector_bytes) + self.dram_latency;
        self.l2.fill(addr);
        if !write {
            self.l1[sm_local].fill(addr);
        }
        t
    }

    /// REMOTE-LOCAL service at the *home* shard: a [`RemoteRequest`]
    /// probes this shard's L2 slice and, on a miss, fills from this
    /// shard's DRAM channel. Writes are posted (bandwidth charged,
    /// latency hidden) and always leave the sector cached at home;
    /// read misses insert into the home L2 only under RTWICE.
    pub(crate) fn serve_remote(
        &mut self,
        req: &RemoteRequest,
        sink: Option<&dyn TraceSink>,
        ctx: &SectorCtx,
    ) -> RemoteReply {
        prof::count("shard.l2_probes", 1);
        prof::count("shard.remote_serves", 1);
        self.stats.l2_remote_local.accesses += 1;
        if req.write {
            if self.l2.probe(req.addr) == Lookup::Hit {
                self.stats.l2_remote_local.hits += 1;
                self.l2.fill(req.addr);
                ctx.emit(sink, SectorRoute::L2HomeHit, self.node);
                RemoteReply {
                    t: req.t + self.l2_latency,
                    l2_hit: true,
                }
            } else {
                self.l2.fill(req.addr);
                self.stats.dram_sectors += 1;
                ctx.emit(sink, SectorRoute::DramRemote, self.node);
                emit_dram(sink, self.node, req.t + self.l2_latency, ctx.bytes);
                RemoteReply {
                    t: self.dram.claim(req.t + self.l2_latency, self.sector_bytes),
                    l2_hit: false,
                }
            }
        } else {
            match self.l2.probe(req.addr) {
                Lookup::Hit => {
                    self.stats.l2_remote_local.hits += 1;
                    ctx.emit(sink, SectorRoute::L2HomeHit, self.node);
                    RemoteReply {
                        t: req.t + self.l2_latency,
                        l2_hit: true,
                    }
                }
                _ => {
                    self.stats.dram_sectors += 1;
                    ctx.emit(sink, SectorRoute::DramRemote, self.node);
                    emit_dram(sink, self.node, req.t + self.l2_latency, ctx.bytes);
                    let t = self.dram.claim(req.t + self.l2_latency, self.sector_bytes)
                        + self.dram_latency;
                    if req.insert == RemoteInsert::Twice {
                        self.l2.fill(req.addr);
                    }
                    RemoteReply { t, l2_hit: false }
                }
            }
        }
    }

    /// Installs a remote read reply that just arrived back at this
    /// (requester) shard: cached in the local L2 partition under remote
    /// caching, and always in the requesting SM's L1.
    pub(crate) fn accept_reply(&mut self, sm_local: usize, addr: u64, remote_caching: bool) {
        if remote_caching {
            self.l2.fill(addr);
        }
        self.l1[sm_local].fill(addr);
    }

    /// The L1 hit latency (the only shard latency callers need).
    pub(crate) fn l1_latency(&self) -> f64 {
        self.l1_latency
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shard() -> ChipletShard {
        ChipletShard::new(&SimConfig::paper_multi_gpu(), NodeId(2))
    }

    fn ctx(write: bool) -> SectorCtx {
        SectorCtx {
            issue_t: 0.0,
            requester: NodeId(0),
            page: 0,
            bytes: 32,
            write,
        }
    }

    #[test]
    fn xbar_hop_applies_latency_and_queues_under_load() {
        let mut s = shard();
        let free = s.xbar_hop(0.0, None);
        assert!(free >= s.xbar_latency, "latency always applies: {free}");
        // Saturate the crossbar; a later hop must queue behind it.
        s.xbar.claim(0.0, 10_000_000);
        let queued = s.xbar_hop(0.0, None);
        assert!(queued > free + 1000.0, "queued = {queued}");
    }

    #[test]
    fn l1_is_write_through_no_write_allocate() {
        let mut s = shard();
        let c = ctx(true);
        assert!(!s.l1_access(0, 0x100, true, None, &c), "writes never hit");
        assert_eq!(s.stats.l1_misses, 1);
        // The write did not allocate: a read still misses, then fills.
        assert!(!s.l1_access(0, 0x100, false, None, &ctx(false)));
        assert!(s.l1_access(0, 0x100, false, None, &ctx(false)));
        assert_eq!(s.stats.l1_hits, 1);
    }

    #[test]
    fn serve_remote_read_respects_insertion_policy() {
        let mut s = shard();
        let c = ctx(false);
        let once = RemoteRequest {
            addr: 0x2000,
            write: false,
            t: 0.0,
            insert: RemoteInsert::Once,
        };
        let r = s.serve_remote(&once, None, &c);
        assert!(!r.l2_hit);
        // RONCE: the miss did not install, so a second probe misses too.
        assert!(!s.serve_remote(&once, None, &c).l2_hit);
        let twice = RemoteRequest {
            addr: 0x4000,
            write: false,
            t: 0.0,
            insert: RemoteInsert::Twice,
        };
        assert!(!s.serve_remote(&twice, None, &c).l2_hit);
        // RTWICE: the first miss installed; the second probe hits.
        assert!(s.serve_remote(&twice, None, &c).l2_hit);
        assert_eq!(s.stats.l2_remote_local.accesses, 4);
        assert_eq!(s.stats.l2_remote_local.hits, 1);
        assert_eq!(s.stats.dram_sectors, 3);
    }

    #[test]
    fn serve_remote_posted_write_hides_dram_latency() {
        let mut s = shard();
        let req = RemoteRequest {
            addr: 0x8000,
            write: true,
            t: 100.0,
            insert: RemoteInsert::Once,
        };
        let r = s.serve_remote(&req, None, &ctx(true));
        // Completion is the bandwidth-claim point (+L2 latency), well
        // under the DRAM access latency that a read would pay.
        assert!(r.t < 100.0 + s.l2_latency + s.dram_latency);
        // Writes always leave the sector cached at home.
        assert!(
            s.serve_remote(
                &RemoteRequest {
                    write: false,
                    ..req
                },
                None,
                &ctx(false)
            )
            .l2_hit
        );
    }

    #[test]
    fn begin_kernel_resets_slots_and_stats() {
        let mut s = shard();
        s.stats.l1_hits = 99;
        s.remote_args = 3;
        s.queue.push_back((1, 1));
        s.begin_kernel(4, 2, 48);
        assert_eq!(s.stats.l1_hits, 0);
        assert_eq!(s.stats.offnode_by_arg, vec![0; 4]);
        assert_eq!(s.remote_args, 0);
        assert!(s.queue.is_empty());
        assert!(s
            .sms
            .iter()
            .all(|m| m.free_tb_slots == 2 && m.free_warps == 48));
    }
}
