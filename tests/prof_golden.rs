//! Profiler non-interference and determinism suite.
//!
//! The self-profiler (`ladm::obs::prof`) measures where the *simulator*
//! spends wall time; it must never leak into the simulated machine. Two
//! invariants are pinned here:
//!
//! 1. **Stats invariance** — with profiling enabled, `KernelStats` stay
//!    bit-identical to an unprofiled run at every engine thread count.
//! 2. **Shape determinism** — the merged span tree's *shape* (names and
//!    nesting, not times) is a function of the code path, not of thread
//!    scheduling: identical across repeats and across worker counts in
//!    the threaded engine.
//!
//! The profiler is process-global, so every test that enables it
//! serializes on one lock.

use ladm::core::policies::{Lasp, Policy};
use ladm::obs::prof;
use ladm::sim::{GpuSystem, KernelStats, SimConfig};
use ladm::workloads::{by_name, Scale};
use std::sync::Mutex;

static PROF_LOCK: Mutex<()> = Mutex::new(());

fn locked() -> std::sync::MutexGuard<'static, ()> {
    PROF_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// Runs VecAdd + PageRank at `threads` workers and returns the stats
/// digest (full `Debug` rendering — any counter or cycle drift changes
/// it).
fn digest(threads: usize) -> String {
    let cfg = SimConfig::paper_multi_gpu();
    let policy = Lasp::ladm();
    let mut lines = Vec::new();
    for name in ["VecAdd", "PageRank"] {
        let w = by_name(name, Scale::Test).expect("Table IV name");
        let mut sys = GpuSystem::new(cfg.clone());
        sys.set_threads(threads);
        let mut total = KernelStats::default();
        for kernel in &w.kernels {
            total.accumulate(&sys.run(&**kernel, &policy as &dyn Policy));
        }
        lines.push(format!("{name} {total:?}"));
    }
    lines.join("\n")
}

/// As [`digest`], but with the profiler live around the runs; also
/// returns the merged profile for shape checks.
fn digest_profiled(threads: usize) -> (String, prof::Profile) {
    prof::reset();
    prof::enable();
    let d = digest(threads);
    prof::disable();
    (d, prof::take())
}

#[test]
fn profiling_leaves_stats_bit_identical_at_every_thread_count() {
    let _t = locked();
    for threads in [1, 2, 8] {
        let plain = digest(threads);
        let (profiled, profile) = digest_profiled(threads);
        assert_eq!(
            plain, profiled,
            "profiling changed simulated stats at {threads} thread(s)"
        );
        assert!(
            !profile.is_empty(),
            "profiler captured nothing at {threads} thread(s)"
        );
    }
}

#[test]
fn span_tree_shape_is_deterministic_across_repeats() {
    let _t = locked();
    let (_, first) = digest_profiled(1);
    let (_, second) = digest_profiled(1);
    assert_eq!(
        first.shape(),
        second.shape(),
        "serial span-tree shape must be run-to-run deterministic"
    );
}

#[test]
fn span_tree_shape_is_stable_across_worker_counts() {
    let _t = locked();
    // The threaded engine (>= 2 workers) takes one code path; its merged
    // shape must not depend on how many workers raced through it.
    // (threads = 1 takes the serial path and legitimately differs:
    // drain_serial/gen_inline instead of snapshot/gen_fanout/join/drain.)
    let (_, two) = digest_profiled(2);
    let (_, four) = digest_profiled(4);
    let (_, eight) = digest_profiled(8);
    assert_eq!(
        two.shape(),
        four.shape(),
        "span shape drifted between 2 and 4 workers"
    );
    assert_eq!(
        four.shape(),
        eight.shape(),
        "span shape drifted between 4 and 8 workers"
    );
    // The threaded signature phases are present in the merged shape.
    let shape = two.shape();
    for phase in ["gen_fanout", "drain", "gen_worker", "stats_merge"] {
        assert!(
            shape.contains(phase),
            "expected phase '{phase}' in threaded shape:\n{shape}"
        );
    }
}

#[test]
fn disabled_profiler_captures_nothing() {
    let _t = locked();
    prof::reset();
    assert!(!prof::profiling());
    let _ = digest(2);
    let p = prof::take();
    assert!(
        p.is_empty(),
        "disabled profiler must record no spans, got: {}",
        p.render_table()
    );
}
