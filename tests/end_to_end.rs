//! End-to-end integration: full workload simulations across policies and
//! machines, checking the statistical invariants and the qualitative
//! orderings the paper's evaluation depends on.

use ladm::prelude::*;
use ladm_core::policies::Policy;
use ladm_workloads::{by_name, suite, Scale};

fn run(cfg: &SimConfig, w: &Workload, policy: &dyn Policy) -> KernelStats {
    let mut sys = GpuSystem::new(cfg.clone());
    let mut total = KernelStats::default();
    for k in &w.kernels {
        total.accumulate(&sys.run(&**k, policy));
    }
    total
}

fn assert_invariants(name: &str, policy: &str, s: &KernelStats) {
    assert!(s.cycles > 0.0, "{name}/{policy}: no time elapsed");
    assert!(s.warp_instructions > 0, "{name}/{policy}");
    assert!(
        s.sectors_offnode <= s.l1_misses,
        "{name}/{policy}: off-node {} > L2-level {}",
        s.sectors_offnode,
        s.l1_misses
    );
    assert!(s.sectors_offgpu <= s.sectors_offnode, "{name}/{policy}");
    for c in [s.l2_local_local, s.l2_local_remote, s.l2_remote_local] {
        assert!(c.hits <= c.accesses, "{name}/{policy}");
    }
    assert!(
        s.offnode_by_arg.iter().sum::<u64>() == s.sectors_offnode,
        "{name}/{policy}: per-arg attribution must sum to the total"
    );
    let (low, high) = (0.0, 1.0 + 1e-9);
    for v in [s.offchip_fraction(), s.l2_hit_rate()] {
        assert!((low..high).contains(&v), "{name}/{policy}: metric {v}");
    }
}

#[test]
fn full_suite_runs_under_ladm_with_invariants() {
    let cfg = SimConfig::paper_multi_gpu();
    for w in suite(Scale::Test) {
        let stats = run(&cfg, &w, &Lasp::ladm());
        assert_eq!(
            stats.threadblocks,
            w.kernels
                .iter()
                .map(|k| k.launch().total_tbs())
                .sum::<u64>(),
            "{}: every threadblock must execute",
            w.name
        );
        assert_invariants(w.name, "LADM", &stats);
    }
}

#[test]
fn representative_workloads_run_under_every_policy() {
    let cfg = SimConfig::paper_multi_gpu();
    let policies: Vec<Box<dyn Policy>> = vec![
        Box::new(BaselineRr::new()),
        Box::new(BatchFt::new()),
        Box::new(KernelWide::new()),
        Box::new(Coda::flat()),
        Box::new(Coda::hierarchical()),
        Box::new(Lasp::new(CacheMode::Rtwice)),
        Box::new(Lasp::new(CacheMode::Ronce)),
        Box::new(Lasp::ladm()),
    ];
    for name in ["VecAdd", "SQ-GEMM", "PageRank", "SRAD", "B+tree"] {
        let w = by_name(name, Scale::Test).expect("suite workload");
        for p in &policies {
            let stats = run(&cfg, &w, &**p);
            assert_invariants(name, p.name(), &stats);
        }
    }
}

#[test]
fn monolithic_never_generates_numa_traffic() {
    let cfg = SimConfig::monolithic();
    for name in ["VecAdd", "SQ-GEMM", "Random-loc", "PageRank", "LBM"] {
        let w = by_name(name, Scale::Test).expect("suite workload");
        let stats = run(&cfg, &w, &Lasp::ladm());
        assert_eq!(stats.sectors_offnode, 0, "{name}");
        assert_eq!(stats.inter_gpu_bytes, 0, "{name}");
        assert_eq!(stats.inter_chiplet_bytes, 0, "{name}");
    }
}

#[test]
fn ladm_beats_baseline_rr_on_regular_workloads() {
    let cfg = SimConfig::paper_multi_gpu();
    for name in ["VecAdd", "SRAD", "CONV", "ScalarProd"] {
        let w = by_name(name, Scale::Test).expect("suite workload");
        let rr = run(&cfg, &w, &BaselineRr::new());
        let ladm = run(&cfg, &w, &Lasp::ladm());
        assert!(
            ladm.cycles < rr.cycles,
            "{name}: LADM {} vs RR {}",
            ladm.cycles,
            rr.cycles
        );
        assert!(
            ladm.offchip_fraction() < rr.offchip_fraction(),
            "{name}: traffic"
        );
    }
}

#[test]
fn ladm_reduces_offchip_traffic_vs_hcoda_on_average() {
    let cfg = SimConfig::paper_multi_gpu();
    let mut hcoda_total = 0.0;
    let mut ladm_total = 0.0;
    for w in suite(Scale::Test) {
        hcoda_total += run(&cfg, &w, &Coda::hierarchical()).offchip_fraction();
        ladm_total += run(&cfg, &w, &Lasp::ladm()).offchip_fraction();
    }
    assert!(
        ladm_total < hcoda_total * 0.75,
        "LADM mean off-chip {ladm_total} vs H-CODA {hcoda_total}"
    );
}

#[test]
fn crb_takes_the_best_of_both_insertion_policies() {
    // RONCE helps the low-reuse ITL case and hurts the high-reuse RCL
    // case; CRB must match the better choice on both (§III-E).
    let cfg = SimConfig::paper_multi_gpu();

    let itl = by_name("Random-loc", Scale::Test).expect("suite workload");
    let rt = run(&cfg, &itl, &Lasp::new(CacheMode::Rtwice));
    let ro = run(&cfg, &itl, &Lasp::new(CacheMode::Ronce));
    let crb = run(&cfg, &itl, &Lasp::ladm());
    assert!(
        (crb.l2_hit_rate() - ro.l2_hit_rate()).abs() < 0.05,
        "CRB must behave like RONCE on ITL: crb {} ronce {} rtwice {}",
        crb.l2_hit_rate(),
        ro.l2_hit_rate(),
        rt.l2_hit_rate()
    );

    let rcl = by_name("SQ-GEMM", Scale::Test).expect("suite workload");
    let rt = run(&cfg, &rcl, &Lasp::new(CacheMode::Rtwice));
    let crb = run(&cfg, &rcl, &Lasp::ladm());
    assert!(
        (crb.l2_hit_rate() - rt.l2_hit_rate()).abs() < 0.05,
        "CRB must behave like RTWICE on RCL: crb {} rtwice {}",
        crb.l2_hit_rate(),
        rt.l2_hit_rate()
    );
}

#[test]
fn first_touch_places_pages_where_batches_run() {
    // Batch+FT on a stride workload: first touch pins each block's chunk
    // locally, so traffic stays low even though placement was reactive.
    let cfg = SimConfig::paper_multi_gpu();
    let w = by_name("ScalarProd", Scale::Test).expect("suite workload");
    let stats = run(&cfg, &w, &BatchFt::new());
    assert!(stats.page_faults > 0);
    assert!(
        stats.offchip_fraction() < 0.1,
        "first touch should localize per-block chunks: {:.1}%",
        stats.offchip_fraction() * 100.0
    );
}

#[test]
fn fault_latency_slows_first_touch_down() {
    let w = by_name("SRAD", Scale::Test).expect("suite workload");
    let mut fast = SimConfig::paper_multi_gpu();
    fast.page_fault_cycles = 0;
    let mut slow = SimConfig::paper_multi_gpu();
    slow.page_fault_cycles = 35_000;
    let optimal = run(&fast, &w, &BatchFt::new());
    let faulting = run(&slow, &w, &BatchFt::new());
    assert!(
        faulting.cycles > optimal.cycles,
        "fault overhead must cost time: {} vs {}",
        faulting.cycles,
        optimal.cycles
    );
}

#[test]
fn bandwidth_scaling_monotonically_improves_numa_performance() {
    // Fig. 4's premise: more interconnect bandwidth → closer to
    // monolithic, for a traffic-heavy policy.
    let w = by_name("SRAD", Scale::Test).expect("suite workload");
    let c90 = run(&SimConfig::fig4_xbar(90), &w, &Coda::flat());
    let c360 = run(&SimConfig::fig4_xbar(360), &w, &Coda::flat());
    assert!(
        c360.cycles <= c90.cycles,
        "4x the link bandwidth cannot be slower: {} vs {}",
        c360.cycles,
        c90.cycles
    );
}

#[test]
fn multi_kernel_workloads_accumulate_and_flush() {
    use ladm_core::expr::{Expr, Var};
    use ladm_workloads::AffineKernel;

    // Two back-to-back stencil sweeps over the same logical data: the L2
    // flush at the kernel boundary means the second kernel re-misses.
    let idx = (Expr::var(Var::Bx) * Expr::var(Var::Bdx) + Expr::var(Var::Tx)).to_poly();
    let make = |name: &'static str| {
        let kernel = KernelStatic {
            name,
            grid_shape: GridShape::OneD,
            args: vec![
                ArgStatic::read("in", 4, idx.clone()),
                ArgStatic::write("out", 4, idx.clone()),
            ],
        };
        let n = 512 * 128u64;
        AffineKernel::new(
            LaunchInfo::new(kernel, (512, 1), (128, 1), vec![n, n]),
            1,
            1,
        )
    };
    let w = Workload::new(
        "two-pass",
        WorkloadKind::NoLocality,
        vec![Box::new(make("pass1")), Box::new(make("pass2"))],
    );
    let cfg = SimConfig::paper_multi_gpu();
    let two = run(&cfg, &w, &Lasp::ladm());
    let single = {
        let w1 = Workload::new(
            "one-pass",
            WorkloadKind::NoLocality,
            vec![Box::new(make("p"))],
        );
        run(&cfg, &w1, &Lasp::ladm())
    };
    assert_eq!(two.threadblocks, 2 * single.threadblocks);
    // The flush forces the second pass to pay DRAM again: accumulated
    // misses are (roughly) double, not amortized.
    assert!(two.dram_sectors >= 2 * single.dram_sectors - 16);
    assert!(two.cycles > single.cycles);
}

#[test]
fn reactive_migration_helps_bad_placement_but_proactive_wins() {
    // §II-A: reactive CPU-style migration can recover locality that a bad
    // initial placement lost, but it pays page-transfer overhead that
    // proactive LADM never incurs.
    let w = by_name("ScalarProd", Scale::Test).expect("suite workload");
    let no_migration = SimConfig::paper_multi_gpu();
    let mut with_migration = SimConfig::paper_multi_gpu();
    with_migration.migration_threshold = 4;

    let rr_static = run(&no_migration, &w, &BaselineRr::new());
    let rr_migrating = run(&with_migration, &w, &BaselineRr::new());
    let ladm = run(&no_migration, &w, &Lasp::ladm());

    assert!(rr_migrating.page_migrations > 0, "migration must trigger");
    assert_eq!(rr_static.page_migrations, 0);
    // Migration localizes each block's vector chunk over time.
    assert!(
        rr_migrating.offchip_fraction() < rr_static.offchip_fraction(),
        "migrating {:.1}% vs static {:.1}%",
        rr_migrating.offchip_fraction() * 100.0,
        rr_static.offchip_fraction() * 100.0
    );
    // But the proactive plan needs no recovery at all.
    assert!(
        ladm.cycles < rr_migrating.cycles,
        "LADM {} vs reactive {}",
        ladm.cycles,
        rr_migrating.cycles
    );
    assert_eq!(ladm.page_migrations, 0);
}

#[test]
fn sub_page_interleaving_rescues_narrow_column_stripes() {
    // A column-walking kernel with a 4 KiB row pitch: each block column's
    // stripe is 256 B — invisible to page-granularity placement, exactly
    // what CODA's hardware-assisted sub-page interleaving fixes.
    use ladm_core::expr::{Expr, Var};
    use ladm_core::plan::{PageMap, RrOrder, TbMap};
    use ladm_core::policies::Manual;
    use ladm_workloads::AffineKernel;

    let w = Expr::var(Var::Bdx) * Expr::var(Var::Gdx); // 64*16 = 1024 elems = 4 KiB
    let idx = (Expr::var(Var::Bx) * Expr::var(Var::Bdx)
        + Expr::var(Var::Tx)
        + Expr::var(Var::Ind(0)) * w)
        .to_poly();
    let kernel = KernelStatic {
        name: "narrow_cols",
        grid_shape: GridShape::TwoD,
        args: vec![ArgStatic::read("data", 4, idx)],
    };
    let n = 1024u64 * 64; // 64 rows
    let launch = LaunchInfo::new(kernel, (16, 4), (64, 1), vec![n]);
    let exec = AffineKernel::new(launch, 64, 1);

    let col_binding = TbMap::ColBinding { cols_per_node: 1 };
    let page_gran = Manual::new(col_binding.clone()).with_arg(
        PageMap::Interleave {
            gran_pages: 1,
            order: RrOrder::Hierarchical,
        },
        ladm_core::plan::RemoteInsert::Twice,
    );
    let sub_page = Manual::new(col_binding).with_arg(
        PageMap::SubPageInterleave {
            gran_bytes: 256,
            order: RrOrder::Hierarchical,
        },
        ladm_core::plan::RemoteInsert::Twice,
    );

    let cfg = SimConfig::paper_multi_gpu();
    let mut sys = GpuSystem::new(cfg.clone());
    let page_stats = sys.run(&exec, &page_gran);
    let sub_stats = sys.run(&exec, &sub_page);
    assert!(
        sub_stats.offchip_fraction() < 0.1,
        "sub-page stripes must be local: {:.1}%",
        sub_stats.offchip_fraction() * 100.0
    );
    assert!(
        page_stats.offchip_fraction() > 0.5,
        "page-granularity cannot express 256 B stripes: {:.1}%",
        page_stats.offchip_fraction() * 100.0
    );
}

#[test]
fn remote_caching_helps_gemm() {
    // §IV-A: enabling remote caching improves GEMM substantially.
    let w = by_name("SQ-GEMM", Scale::Test).expect("suite workload");
    let on = SimConfig::paper_multi_gpu();
    let mut off = SimConfig::paper_multi_gpu();
    off.remote_caching = false;
    let with = run(&on, &w, &Coda::hierarchical());
    let without = run(&off, &w, &Coda::hierarchical());
    assert!(
        without.cycles > with.cycles,
        "remote caching must help: {} vs {}",
        without.cycles,
        with.cycles
    );
}
