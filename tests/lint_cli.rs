//! End-to-end CLI checks for `ladm-lint`: flag plumbing and exit codes,
//! driven through the real binary (`CARGO_BIN_EXE_ladm-lint`).

use std::process::Command;

fn lint(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_ladm-lint"))
        .args(args)
        .output()
        .expect("ladm-lint runs")
}

#[test]
fn suite_is_clean_under_deny_warnings_in_both_output_modes() {
    // The shipped suite is lint-clean, so both the text and the JSON
    // exit paths must agree on success even under --deny warnings.
    let text = lint(&["--deny", "warnings", "--quiet", "VecAdd"]);
    assert!(text.status.success(), "text path: {text:?}");
    let json = lint(&["--json", "--deny", "warnings", "VecAdd"]);
    assert!(json.status.success(), "json path: {json:?}");
    let out = String::from_utf8(json.stdout).expect("utf8");
    assert!(
        out.trim_start().starts_with('{'),
        "--json must emit JSON objects, got: {out}"
    );
}

#[test]
fn traffic_mode_prints_the_bound_table_and_exits_clean() {
    let out = lint(&["--traffic", "--deny", "warnings", "--quiet"]);
    assert!(out.status.success(), "{out:?}");
    let stdout = String::from_utf8(out.stdout).expect("utf8");
    assert!(
        stdout.contains("predicted-vs-simulated off-node sectors"),
        "missing table header:\n{stdout}"
    );
    assert!(stdout.contains("0 violation(s)"), "{stdout}");
}

#[test]
fn unknown_flags_are_usage_errors() {
    let out = lint(&["--no-such-flag"]);
    assert_eq!(out.status.code(), Some(2), "{out:?}");
}
