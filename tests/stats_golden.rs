//! Golden-digest equivalence suite: the full 27-workload suite at
//! `Scale::Test`, run under LADM and the baseline round-robin policy,
//! must keep producing bit-identical [`KernelStats`]. The fixture was
//! generated from the pre-flat-table HashMap resolution path, so it pins
//! the sector-routing fast path to the exact behaviour of the original
//! engine — an optimization PR that changes any counter or cycle count
//! fails here without fixture regeneration.
//!
//! Regenerate after an intentional *model* change with
//! `LADM_UPDATE_GOLDEN=1 cargo test --test stats_golden`.

use ladm::core::policies::{BaselineRr, Lasp, Policy};
use ladm::sim::{GpuSystem, KernelStats, SimConfig};
use ladm::workloads::{suite, Scale};

const FIXTURE: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/tests/fixtures/stats_digest.txt"
);

/// One line per (workload, policy) cell: the full `Debug` rendering of
/// the accumulated stats. `Debug` of `KernelStats` includes every
/// counter and the `f64` cycle count at full precision, so any drift —
/// a different hit count, a changed `offnode_by_arg` length, a cycle of
/// queueing delay — changes the line.
fn digest_lines() -> Vec<String> {
    let cfg = SimConfig::paper_multi_gpu();
    let policies: [&dyn Policy; 2] = [&Lasp::ladm(), &BaselineRr::new()];
    let mut lines = Vec::new();
    for policy in policies {
        for w in suite(Scale::Test) {
            let mut sys = GpuSystem::new(cfg.clone());
            let mut total = KernelStats::default();
            for kernel in &w.kernels {
                total.accumulate(&sys.run(&**kernel, policy));
            }
            lines.push(format!("{} {} {:?}", w.name, policy.name(), total));
        }
    }
    lines
}

#[test]
fn full_suite_stats_match_golden_digest() {
    let got = digest_lines().join("\n") + "\n";
    if std::env::var_os("LADM_UPDATE_GOLDEN").is_some() {
        std::fs::write(FIXTURE, &got).expect("fixture must be writable");
        return;
    }
    let want = std::fs::read_to_string(FIXTURE)
        .expect("fixture missing — run with LADM_UPDATE_GOLDEN=1 to create it");
    if got == want {
        return;
    }
    // Report the first diverging cell, not a 54-line wall of text.
    for (g, w) in got.lines().zip(want.lines()) {
        assert!(
            g == w,
            "stats digest diverged.\n got: {g}\nwant: {w}\n\
             The engine fast path must be a pure optimization; if the model \
             intentionally changed, regenerate with \
             LADM_UPDATE_GOLDEN=1 cargo test --test stats_golden"
        );
    }
    panic!(
        "stats digest line count changed: got {}, fixture has {}",
        got.lines().count(),
        want.lines().count()
    );
}
