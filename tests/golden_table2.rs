//! Golden-file test for the Table II classification of the whole suite.
//!
//! `tests/fixtures/table2_rows.txt` holds one line per access site of
//! every Table IV workload with its derived Table II row. Any change to
//! the classifier or to a workload spec that moves a site to a different
//! row shows up as a diff here. Regenerate deliberately with:
//!
//! ```text
//! cargo run --bin ladm-lint -- --table > tests/fixtures/table2_rows.txt
//! ```

use ladm::analyzer::classification_report;
use ladm::workloads::{suite, Scale};

const GOLDEN: &str = include_str!("fixtures/table2_rows.txt");

/// The derived classification of every access site matches the checked-in
/// fixture line for line.
#[test]
fn classification_matches_golden_fixture() {
    let actual = classification_report(Scale::Test);
    if actual != GOLDEN {
        let mismatches: Vec<String> = actual
            .lines()
            .zip(GOLDEN.lines())
            .filter(|(a, g)| a != g)
            .map(|(a, g)| format!("  fixture: {g}\n  derived: {a}"))
            .collect();
        panic!(
            "Table II classification diverged from tests/fixtures/table2_rows.txt \
             ({} line(s) differ, {} vs {} lines total).\n{}\n\
             Regenerate with `cargo run --bin ladm-lint -- --table` if intended.",
            mismatches
                .len()
                .max(actual.lines().count().abs_diff(GOLDEN.lines().count())),
            actual.lines().count(),
            GOLDEN.lines().count(),
            mismatches.join("\n")
        );
    }
}

/// The fixture covers every access site of every workload — nothing in
/// the suite escapes the golden check.
#[test]
fn fixture_covers_every_access_site() {
    let sites: usize = suite(Scale::Test)
        .iter()
        .flat_map(|w| w.kernels.iter())
        .flat_map(|k| k.launch().kernel.args.iter())
        .map(|a| a.accesses.len())
        .sum();
    assert_eq!(
        GOLDEN.lines().count(),
        sites,
        "fixture must have exactly one line per access site"
    );
    for w in suite(Scale::Test) {
        assert!(
            GOLDEN.lines().any(|l| l.starts_with(w.name)),
            "workload {} missing from fixture",
            w.name
        );
    }
}

/// Sanity: the suite exercises both ends of Table II — no-locality
/// (row 1) and unclassified (row 7) rows both appear.
#[test]
fn fixture_spans_table_rows() {
    assert!(GOLDEN.contains("row 1"), "row 1 (NL) must appear");
    assert!(GOLDEN.contains("row 6"), "row 6 (ITL) must appear");
    assert!(GOLDEN.contains("row 7"), "row 7 (Unclassified) must appear");
    // At least one Shared row (2-5) from the dense-linear-algebra kernels.
    assert!(
        (2..=5).any(|r| GOLDEN.contains(&format!("row {r}"))),
        "a Shared row (2-5) must appear"
    );
}
