//! Cross-crate plan-consistency tests: every policy produces a valid,
//! pure plan for every workload of the suite on every topology — without
//! running the simulator.

use ladm::prelude::*;
use ladm_core::plan::RemoteInsert;
use ladm_core::policies::{CacheMode, Policy};
use ladm_workloads::{suite, Scale};

fn all_policies() -> Vec<Box<dyn Policy>> {
    vec![
        Box::new(BaselineRr::new()),
        Box::new(BatchFt::new()),
        Box::new(KernelWide::new()),
        Box::new(Coda::flat()),
        Box::new(Coda::hierarchical()),
        Box::new(Lasp::new(CacheMode::Rtwice)),
        Box::new(Lasp::new(CacheMode::Ronce)),
        Box::new(Lasp::ladm()),
    ]
}

fn topologies() -> Vec<Topology> {
    vec![
        Topology::paper_multi_gpu(),
        Topology::monolithic(),
        Topology::dgx1(),
        Topology::mcm_gpu(),
        Topology::new(2, 8),
    ]
}

#[test]
fn every_policy_plans_every_workload_on_every_topology() {
    for topo in topologies() {
        for w in suite(Scale::Test) {
            for kernel in &w.kernels {
                let launch = kernel.launch();
                for policy in all_policies() {
                    let plan = policy.plan(launch, &topo);
                    assert_eq!(
                        plan.args.len(),
                        launch.kernel.args.len(),
                        "{} under {} on {}: one ArgPlan per argument",
                        w.name,
                        policy.name(),
                        topo
                    );
                }
            }
        }
    }
}

#[test]
fn plans_are_pure() {
    let topo = Topology::paper_multi_gpu();
    for w in suite(Scale::Test) {
        let launch = w.kernels[0].launch();
        for policy in all_policies() {
            let a = policy.plan(launch, &topo);
            let b = policy.plan(launch, &topo);
            assert_eq!(a, b, "{} plan must be deterministic", policy.name());
        }
    }
}

#[test]
fn schedules_cover_only_valid_nodes() {
    let topo = Topology::paper_multi_gpu();
    for w in suite(Scale::Test) {
        let launch = w.kernels[0].launch();
        let (gdx, gdy) = launch.grid;
        for policy in all_policies() {
            let plan = policy.plan(launch, &topo);
            for &(bx, by) in &[
                (0, 0),
                (gdx - 1, 0),
                (0, gdy - 1),
                (gdx - 1, gdy - 1),
                (gdx / 2, gdy / 2),
            ] {
                let node = plan.schedule.node_of_tb(bx, by, launch.grid, &topo);
                assert!(
                    node.0 < topo.num_nodes(),
                    "{} under {}: block ({bx},{by}) -> invalid {node}",
                    w.name,
                    policy.name()
                );
            }
        }
    }
}

#[test]
fn schedules_use_all_nodes_for_large_grids() {
    // Any sensible policy load-balances a grid much larger than the
    // machine across every node.
    let topo = Topology::paper_multi_gpu();
    for w in suite(Scale::Test) {
        let launch = w.kernels[0].launch();
        if launch.total_tbs() < 4 * u64::from(topo.num_nodes()) {
            continue;
        }
        let (gdx, gdy) = launch.grid;
        for policy in all_policies() {
            let plan = policy.plan(launch, &topo);
            let mut used = vec![false; topo.num_nodes() as usize];
            for by in 0..gdy {
                for bx in 0..gdx {
                    used[plan.schedule.node_of_tb(bx, by, launch.grid, &topo).0 as usize] = true;
                }
            }
            // Row/column-granularity schedules may leave nodes idle when
            // the grid has fewer rows than nodes (the paper accepts
            // this); what must never happen is a pile-up on a few nodes.
            let count = used.iter().filter(|&&u| u).count();
            let lower = (topo.num_nodes() as usize / 2)
                .min(gdx.max(gdy) as usize)
                .max(1);
            assert!(
                count >= lower,
                "{} under {}: only {count}/{} nodes used",
                w.name,
                policy.name(),
                topo.num_nodes()
            );
        }
    }
}

#[test]
fn ladm_cache_policy_follows_crb() {
    // Under CRB only ITL structures get RONCE; under the uniform modes
    // everything follows the mode.
    let topo = Topology::paper_multi_gpu();
    for w in suite(Scale::Test) {
        let launch = w.kernels[0].launch();
        let crb = Lasp::ladm().plan(launch, &topo);
        let rtwice = Lasp::new(CacheMode::Rtwice).plan(launch, &topo);
        let ronce = Lasp::new(CacheMode::Ronce).plan(launch, &topo);
        for (i, _) in launch.kernel.args.iter().enumerate() {
            assert_eq!(rtwice.args[i].remote_insert, RemoteInsert::Twice);
            assert_eq!(ronce.args[i].remote_insert, RemoteInsert::Once);
            // CRB is one of the two, per-argument.
            let _ = crb.args[i].remote_insert;
        }
        // All three share the same placement and schedule.
        assert_eq!(crb.schedule, rtwice.schedule, "{}", w.name);
        for i in 0..launch.kernel.args.len() {
            assert_eq!(crb.args[i].pages, rtwice.args[i].pages, "{}", w.name);
        }
    }
}

#[test]
fn locality_table_roundtrip_for_suite() {
    use ladm_core::table::{LocalityTable, MallocPc};
    let mut table = LocalityTable::new();
    for (wi, w) in suite(Scale::Test).iter().enumerate() {
        let launch = w.kernels[0].launch();
        let pcs: Vec<MallocPc> = (0..launch.kernel.args.len())
            .map(|i| MallocPc((wi * 100 + i) as u64))
            .collect();
        table.compile_kernel(&launch.kernel, &pcs);
        for (i, &pc) in pcs.iter().enumerate() {
            assert_eq!(
                table.bind_allocation(pc, 0x1000 * pc.0, launch.arg_pages(i)),
                1
            );
        }
    }
    assert!(table.len() > 27 * 2);
    for e in table.entries() {
        assert!(e.is_bound());
        assert!((1..=7).contains(&e.representative_class().table_row()));
    }
    // The rendered table mentions every locality group.
    let rendered = table.to_string();
    for needle in ["ITL", "NL", "RCL", "unclassified"] {
        assert!(rendered.contains(needle), "missing {needle}");
    }
}
