//! Parallel-drain behaviour under swizzled CTA dispatch orders.
//!
//! The conservative-lookahead drain (DESIGN.md §13) decides eligibility
//! and mid-kernel demotion from the event stream, not from the dispatch
//! order — so swapping row-major for a space-filling-curve permutation
//! (DESIGN.md §15) must leave both mechanisms working:
//!
//! 1. **Eligibility** — ScalarProd's streaming reduction keeps enough
//!    shard-local work under first-touch placement that rounds execute
//!    their event prefix on the pool (`drain_par` spans appear) and the
//!    drain stays promoted for the whole kernel.
//! 2. **Demotion** — PageRank's data-dependent gather and TRA's
//!    transpose starve every round, so after `DEMOTE_AFTER` barren
//!    rounds the drain demotes to the epoch-prefetch driver
//!    (`drain.demotions` counter fires).
//!
//! This lives in its own integration-test binary because the
//! self-profiler is process-global: any concurrently running simulation
//! in the same process would bleed spans into the captured profile.

use ladm::core::policies::registry;
use ladm::obs::prof;
use ladm::sim::{GpuSystem, SimConfig};
use ladm::workloads::{by_name, Scale};
use std::sync::Mutex;

static PROF_LOCK: Mutex<()> = Mutex::new(());

fn locked() -> std::sync::MutexGuard<'static, ()> {
    PROF_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// Runs `workload` under `policy_name` at 4 engine threads with the
/// profiler live, returning the captured profile.
fn profiled_run(workload: &str, policy_name: &str) -> prof::Profile {
    let policy = registry::build(policy_name).expect("registered policy");
    prof::reset();
    prof::enable();
    let w = by_name(workload, Scale::Test).expect("Table IV name");
    let mut sys = GpuSystem::new(SimConfig::paper_multi_gpu());
    sys.set_threads(4);
    for kernel in &w.kernels {
        sys.run(&**kernel, &*policy);
    }
    prof::disable();
    prof::take()
}

#[test]
fn drain_executes_parallel_prefixes_under_swizzled_order() {
    let _t = locked();
    for policy in ["Swizzle-Hilbert", "Swizzle-Blk"] {
        let p = profiled_run("ScalarProd", policy);
        assert!(
            p.flatten()
                .iter()
                .any(|(path, _)| path.contains("drain_par")),
            "no drain_par span under {policy}: the drain never executed \
             a parallel prefix with a swizzled dispatch order\n{}",
            p.render_table()
        );
        assert_eq!(
            p.counters.get("drain.demotions"),
            None,
            "ScalarProd under {policy} should keep the drain promoted"
        );
    }
}

#[test]
fn drain_demotes_mid_kernel_under_swizzled_order() {
    let _t = locked();
    for (workload, policy) in [
        ("PageRank", "Swizzle-Hilbert"),
        ("TRA", "LASP+Swizzle-Hilbert"),
    ] {
        let p = profiled_run(workload, policy);
        assert!(
            p.counters.get("drain.demotions").copied().unwrap_or(0) >= 1,
            "{workload} under {policy} should demote to the epoch driver \
             mid-kernel; counters: {:?}",
            p.counters
        );
        // Demotion hands the rest of the kernel to the epoch driver,
        // whose signature fan-out phase must then appear.
        assert!(
            p.flatten()
                .iter()
                .any(|(path, _)| path.contains("gen_fanout")),
            "no epoch-driver phase after demotion in {workload}\n{}",
            p.render_table()
        );
    }
}
