//! Thread-count determinism suite: the threaded engine must be a pure
//! wall-clock optimization. The full 27-workload suite at
//! `Scale::Test`, run under LADM and the baseline round-robin policy,
//! must produce bit-identical [`KernelStats`] at 1, 2, 4 and 8 worker
//! threads — and that digest must equal the serial-engine golden fixture
//! (`tests/fixtures/stats_digest.txt`), so threading cannot drift even
//! in lockstep with itself.
//!
//! Two threaded drivers are covered. The epoch-prefetch driver
//! (DESIGN.md §10) parallelizes only the *pure* per-warp
//! access-generation phase; every stateful transition is resolved by
//! the coordinator in exact global `(time, seq)` event order. The
//! conservative-lookahead drain (DESIGN.md §13) additionally executes
//! each round's local-only event prefix on the shards concurrently;
//! its windows are bounded so the parallel prefix is exactly the
//! serial prefix, with seqs preassigned to the serial values.

use ladm::core::policies::{registry, BaselineRr, Lasp, Policy};
use ladm::sim::{GpuSystem, KernelStats, SessionSim, SimConfig};
use ladm::workloads::{attn_decode, suite, Scale};

const FIXTURE: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/tests/fixtures/stats_digest.txt"
);

const SESSION_FIXTURE: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/tests/fixtures/session_decode_digest.txt"
);

/// Same digest as `tests/stats_golden.rs`, with the engine pinned to
/// `threads` workers: one line per (workload, policy) cell holding the
/// full `Debug` rendering of the accumulated stats.
fn digest_lines(threads: usize) -> Vec<String> {
    let cfg = SimConfig::paper_multi_gpu();
    let policies: [&dyn Policy; 2] = [&Lasp::ladm(), &BaselineRr::new()];
    let mut lines = Vec::new();
    for policy in policies {
        for w in suite(Scale::Test) {
            let mut sys = GpuSystem::new(cfg.clone());
            sys.set_threads(threads);
            let mut total = KernelStats::default();
            for kernel in &w.kernels {
                total.accumulate(&sys.run(&**kernel, policy));
            }
            lines.push(format!("{} {} {:?}", w.name, policy.name(), total));
        }
    }
    lines
}

#[test]
fn full_suite_is_bit_identical_across_thread_counts() {
    let serial = digest_lines(1);
    for threads in [2, 4, 8] {
        let threaded = digest_lines(threads);
        assert_eq!(
            serial.len(),
            threaded.len(),
            "cell count changed at {threads} threads"
        );
        for (s, t) in serial.iter().zip(&threaded) {
            assert!(
                s == t,
                "digest diverged at {threads} threads.\nserial:   {s}\nthreaded: {t}"
            );
        }
    }

    // And the serial digest itself must still match the golden fixture:
    // threading must not have perturbed the baseline it is compared to.
    let want = std::fs::read_to_string(FIXTURE)
        .expect("fixture missing — run stats_golden with LADM_UPDATE_GOLDEN=1 to create it");
    let got = serial.join("\n") + "\n";
    assert!(
        got == want,
        "serial digest no longer matches tests/fixtures/stats_digest.txt; \
         the threaded-engine refactor must not change the model"
    );
}

/// The swizzle-scheduler policies registered in
/// `ladm::core::policies::registry` — every policy whose `TbMap` is the
/// rank-table-backed `Swizzled` variant, so the dispatch order the
/// engine drains is a genuine permutation of row-major.
const SWIZZLE_POLICIES: &[&str] = &[
    "Swizzle-Blk",
    "Swizzle-Morton",
    "Swizzle-Hilbert",
    "Swizzle-Hilbert-2L",
    "Swizzle-Hilbert+RR",
    "LASP+Swizzle-Hilbert",
    "LASP+Swizzle-Blk",
];

const SWIZZLE_FIXTURE: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/tests/fixtures/swizzle_digest.txt"
);

/// As [`digest_lines`], for the swizzle-policy family: one line per
/// (workload, policy) cell over the full Table IV suite.
fn swizzle_digest_lines(threads: usize) -> Vec<String> {
    let cfg = SimConfig::paper_multi_gpu();
    let mut lines = Vec::new();
    for name in SWIZZLE_POLICIES {
        let policy = registry::build(name).expect("registered swizzle policy");
        for w in suite(Scale::Test) {
            let mut sys = GpuSystem::new(cfg.clone());
            sys.set_threads(threads);
            let mut total = KernelStats::default();
            for kernel in &w.kernels {
                total.accumulate(&sys.run(&**kernel, &*policy));
            }
            lines.push(format!("{} {} {:?}", w.name, policy.name(), total));
        }
    }
    lines
}

#[test]
fn swizzle_lineup_is_bit_identical_across_thread_counts() {
    let serial = swizzle_digest_lines(1);
    for threads in [2, 4, 8] {
        let threaded = swizzle_digest_lines(threads);
        assert_eq!(
            serial.len(),
            threaded.len(),
            "cell count changed at {threads} threads"
        );
        for (s, t) in serial.iter().zip(&threaded) {
            assert!(
                s == t,
                "swizzle digest diverged at {threads} threads.\nserial:   {s}\nthreaded: {t}"
            );
        }
    }

    let got = serial.join("\n") + "\n";
    if std::env::var_os("LADM_UPDATE_GOLDEN").is_some() {
        std::fs::write(SWIZZLE_FIXTURE, &got).expect("fixture written");
        return;
    }
    let want = std::fs::read_to_string(SWIZZLE_FIXTURE)
        .expect("fixture missing — run with LADM_UPDATE_GOLDEN=1 to create it");
    assert!(
        got == want,
        "swizzle digest no longer matches tests/fixtures/swizzle_digest.txt; \
         if the model change is intentional, regenerate with \
         LADM_UPDATE_GOLDEN=1 cargo test --test determinism"
    );
}

/// Session-mode digest: three attention decode steps through a
/// [`SessionSim`] (pinning on and off), one line per (mode, step,
/// kernel) holding the full `Debug` rendering of the
/// [`ladm::sim::SessionRunStats`] — page-home state carried across
/// launches, replaced-page movement and all.
fn session_digest_lines(threads: usize) -> Vec<String> {
    let mut lines = Vec::new();
    for pinning in [true, false] {
        let w = attn_decode(Scale::Test);
        let mut sim = SessionSim::new(SimConfig::paper_multi_gpu(), Lasp::ladm(), pinning);
        sim.set_threads(threads);
        let mode = if pinning { "pinned" } else { "replanned" };
        for step in 0..3 {
            for (kernel, run) in w.kernels.iter().zip(sim.run_step(&w.kernels)) {
                lines.push(format!(
                    "{mode} step{step} {} {run:?}",
                    kernel.launch().kernel.name
                ));
            }
        }
    }
    lines
}

#[test]
fn session_decode_is_bit_identical_across_thread_counts() {
    let serial = session_digest_lines(1);
    for threads in [2, 8] {
        let threaded = session_digest_lines(threads);
        assert_eq!(
            serial, threaded,
            "session digest diverged at {threads} threads"
        );
    }

    let got = serial.join("\n") + "\n";
    if std::env::var_os("LADM_UPDATE_GOLDEN").is_some() {
        std::fs::write(SESSION_FIXTURE, &got).expect("fixture written");
        return;
    }
    let want = std::fs::read_to_string(SESSION_FIXTURE)
        .expect("fixture missing — run with LADM_UPDATE_GOLDEN=1 to create it");
    assert!(
        got == want,
        "session decode digest no longer matches \
         tests/fixtures/session_decode_digest.txt; if intentional, regenerate with \
         LADM_UPDATE_GOLDEN=1 cargo test --test determinism"
    );
}
