//! Golden fixture for the symbolic traffic analyzer: the
//! predicted-vs-simulated off-node sector table over the full
//! 27-workload suite at `Scale::Test`, pinned byte-for-byte.
//!
//! Two properties ride on one fixture:
//!
//! * **soundness** — every row's simulated count sits at or below the
//!   symbolic bound (checked directly, so a violation fails with the
//!   offending row, not a wall of diff);
//! * **stability** — neither the analyzer's bounds nor the engine's
//!   measured counts drift without a deliberate fixture regeneration.
//!
//! Regenerate after an intentional model or analyzer change with
//! `LADM_UPDATE_GOLDEN=1 cargo test --test traffic_golden`.

use ladm::analyzer::traffic_suite;
use ladm::workloads::Scale;

const FIXTURE: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/tests/fixtures/traffic_suite.txt"
);

#[test]
fn traffic_table_matches_golden_fixture() {
    let table = traffic_suite(Scale::Test);

    // Soundness first: a violated bound is a model bug whatever the
    // fixture says.
    for row in &table.rows {
        assert!(
            row.simulated <= row.predicted,
            "{}/{}/{}: simulated {} off-node sectors above the symbolic bound {}",
            row.workload,
            row.kernel,
            row.arg,
            row.simulated,
            row.predicted
        );
    }
    assert!(!table.has_violations());

    let got = table.render();
    if std::env::var_os("LADM_UPDATE_GOLDEN").is_some() {
        std::fs::write(FIXTURE, &got).expect("fixture must be writable");
        return;
    }
    let want = std::fs::read_to_string(FIXTURE)
        .expect("fixture missing — run with LADM_UPDATE_GOLDEN=1 to create it");
    if got == want {
        return;
    }
    for (g, w) in got.lines().zip(want.lines()) {
        assert!(
            g == w,
            "traffic table diverged.\n got: {g}\nwant: {w}\n\
             If the analyzer or the engine changed deliberately, regenerate \
             with LADM_UPDATE_GOLDEN=1 cargo test --test traffic_golden"
        );
    }
    panic!(
        "traffic table length changed: got {} lines, fixture has {}",
        got.lines().count(),
        want.lines().count()
    );
}

#[test]
fn no_suite_report_escalates_past_note() {
    for report in &traffic_suite(Scale::Test).reports {
        assert!(
            report.worst() <= Some(ladm::analyzer::Severity::Note),
            "{} traffic analysis found a violation:\n{}",
            report.workload,
            report.render_text()
        );
    }
}
