//! Golden-file test for the Chrome trace exporter: a fixed VecAdd run
//! must keep producing the same event sequence. The fixture stores one
//! `ph name pid` line per trace event in document order; regenerate it
//! after an intentional exporter change with
//! `LADM_UPDATE_GOLDEN=1 cargo test --test trace_golden`.

use ladm::core::policies::Lasp;
use ladm::obs::{Json, RecordingSink};
use ladm::sim::{GpuSystem, SimConfig};
use ladm::workloads::{by_name, Scale};
use std::sync::Arc;

const FIXTURE: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/tests/fixtures/trace_vecadd_events.txt"
);

/// Runs VecAdd (Test scale, deterministic) once with a recording sink
/// and returns the rendered Chrome trace JSON plus the run's stats.
fn traced_vecadd() -> (String, ladm::sim::KernelStats) {
    let cfg = SimConfig::paper_multi_gpu();
    let w = by_name("VecAdd", Scale::Test).expect("vecadd exists");
    let sink = Arc::new(RecordingSink::new());
    let mut sys = GpuSystem::new(cfg);
    sys.set_sink(sink.clone());
    let mut total = ladm::sim::KernelStats::default();
    for kernel in &w.kernels {
        total.accumulate(&sys.run(&**kernel, &Lasp::ladm()));
    }
    (ladm::obs::chrome_trace(&sink.take_events()), total)
}

/// Reduces a Chrome trace document to the golden line format.
fn event_lines(text: &str) -> Vec<String> {
    let doc = Json::parse(text).expect("chrome trace must parse");
    doc.get("traceEvents")
        .and_then(Json::as_array)
        .expect("traceEvents array")
        .iter()
        .map(|ev| {
            format!(
                "{} {} {}",
                ev.get("ph").and_then(Json::as_str).expect("ph"),
                ev.get("name").and_then(Json::as_str).expect("name"),
                ev.get("pid").and_then(Json::as_f64).expect("pid")
            )
        })
        .collect()
}

#[test]
fn chrome_trace_matches_golden_fixture() {
    let (text, _) = traced_vecadd();
    let got = event_lines(&text).join("\n") + "\n";
    if std::env::var_os("LADM_UPDATE_GOLDEN").is_some() {
        std::fs::write(FIXTURE, &got).expect("fixture must be writable");
        return;
    }
    let want = std::fs::read_to_string(FIXTURE)
        .expect("fixture missing — run with LADM_UPDATE_GOLDEN=1 to create it");
    assert!(
        got == want,
        "chrome trace event sequence changed ({} events, fixture has {});\n\
         if intentional, regenerate with LADM_UPDATE_GOLDEN=1 cargo test --test trace_golden",
        got.lines().count(),
        want.lines().count()
    );
}

#[test]
fn chrome_trace_is_deterministic() {
    let (a, _) = traced_vecadd();
    let (b, _) = traced_vecadd();
    assert_eq!(a, b, "two identical runs must render byte-identical JSON");
}

#[test]
fn tracing_leaves_kernel_stats_unchanged() {
    let cfg = SimConfig::paper_multi_gpu();
    let w = by_name("VecAdd", Scale::Test).expect("vecadd exists");
    let policy = Lasp::ladm();

    let mut plain = GpuSystem::new(cfg.clone());
    let mut untraced = ladm::sim::KernelStats::default();
    for kernel in &w.kernels {
        untraced.accumulate(&plain.run(&**kernel, &policy));
    }

    let (_, traced) = traced_vecadd();
    assert_eq!(
        format!("{traced:?}"),
        format!("{untraced:?}"),
        "attaching a sink must not perturb simulation results"
    );
}
