//! PageRank over a synthetic web graph: intra-thread locality on the edge
//! arrays, data-dependent gathers on the rank vector. Shows LADM's
//! kernel-wide fallback plus CRB cache bypassing against H-CODA.
//!
//! ```text
//! cargo run --release --example graph_pagerank
//! ```

use ladm::prelude::*;
use ladm_core::analysis::classify;
use ladm_core::policies::Policy;
use ladm_workloads::irregular::CsrKernel;
use ladm_workloads::Csr;

fn main() {
    // Build a custom graph: 32k pages, skewed degrees, mostly-local links.
    let graph = Csr::synthetic(32_768, 12, 64, 2026);
    println!(
        "graph: {} nodes, {} edges, max degree {}",
        graph.num_nodes(),
        graph.num_edges(),
        graph.max_degree()
    );
    let kernel = CsrKernel::new("pagerank_push", graph, 128, 32, 1, false);
    let launch = kernel.launch();

    // What the compiler sees:
    for arg in &launch.kernel.args {
        let class = classify(&arg.accesses[0], launch.kernel.grid_shape, 0);
        println!("  {:<8} -> {class}", arg.name);
    }

    let topo = Topology::paper_multi_gpu();
    let plan = Lasp::ladm().plan(launch, &topo);
    println!("\nLADM plan: {plan}\n");

    let cfg = SimConfig::paper_multi_gpu();
    println!(
        "{:<8} {:>12} {:>10} {:>8} {:>8} {:>8}",
        "policy", "cycles", "off-chip", "LLhit", "LRhit", "RLhit"
    );
    for p in [&Coda::hierarchical() as &dyn Policy, &Lasp::ladm()] {
        let mut sys = GpuSystem::new(cfg.clone());
        let s = sys.run(&kernel, p);
        println!(
            "{:<8} {:>12.0} {:>9.1}% {:>8.2} {:>8.2} {:>8.2}",
            p.name(),
            s.cycles,
            s.offchip_fraction() * 100.0,
            s.l2_local_local.hit_rate(),
            s.l2_local_remote.hit_rate(),
            s.l2_remote_local.hit_rate()
        );
    }
    println!(
        "\nKernel-wide chunking keeps each thread's adjacency walk on its own\n\
         node; only the genuinely random rank gathers still cross the fabric."
    );
}
