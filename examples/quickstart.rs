//! Quickstart: describe a CUDA kernel's index expressions, let LADM
//! classify them, plan placement + scheduling, and simulate the launch on
//! the paper's 4-GPU × 4-chiplet machine.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use ladm::prelude::*;
use ladm_core::analysis::classify;
use ladm_core::expr::{Expr, Var};
use ladm_workloads::AffineKernel;

fn main() {
    // 1. Transcribe the kernel's global accesses over prime variables.
    //    saxpy: y[i] = a*x[i] + y[i],  i = blockIdx.x*blockDim.x + threadIdx.x
    let i = (Expr::var(Var::Bx) * Expr::var(Var::Bdx) + Expr::var(Var::Tx)).to_poly();
    let kernel = KernelStatic {
        name: "saxpy",
        grid_shape: GridShape::OneD,
        args: vec![
            ArgStatic::read("x", 4, i.clone()),
            ArgStatic::write("y", 4, i.clone()),
        ],
    };

    // 2. The compiler pass: classify each access (Table II).
    for arg in &kernel.args {
        let class = classify(&arg.accesses[0], kernel.grid_shape, 0);
        println!(
            "access {:>2}[..] -> row {} ({class})",
            arg.name,
            class.table_row()
        );
    }

    // 3. Launch-time: bind dimensions and sizes, let LASP plan.
    let blocks = 4096u32;
    let n = u64::from(blocks) * 128;
    let launch = LaunchInfo::new(kernel, (blocks, 1), (128, 1), vec![n, n]);
    let topo = Topology::paper_multi_gpu();
    let plan = Lasp::ladm().plan(&launch, &topo);
    println!("\nLADM plan: {plan}\n");

    // 4. Simulate on the Table III machine and compare against the naive
    //    round-robin baseline.
    let exec = AffineKernel::new(launch, 1, 1);
    let mut sys = GpuSystem::new(SimConfig::paper_multi_gpu());
    let ladm = sys.run(&exec, &Lasp::ladm());
    let baseline = sys.run(&exec, &BaselineRr::new());

    println!(
        "LADM:        {:>9.0} cycles, {:>5.1}% off-chip traffic",
        ladm.cycles,
        ladm.offchip_fraction() * 100.0
    );
    println!(
        "Baseline-RR: {:>9.0} cycles, {:>5.1}% off-chip traffic",
        baseline.cycles,
        baseline.offchip_fraction() * 100.0
    );
    println!(
        "Speedup:     {:.2}x from co-placing threadblocks and datablocks",
        baseline.cycles / ladm.cycles
    );
}
