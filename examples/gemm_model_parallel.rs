//! Model-parallel GEMM on a multi-GPU box (§IV-C): LASP's input-size-aware
//! tie break flips from row-binding to column-binding when the weight
//! matrix dwarfs the activations, which is exactly what hand-tuned
//! model-parallel training frameworks do.
//!
//! ```text
//! cargo run --release --example gemm_model_parallel
//! ```

use ladm::prelude::*;
use ladm_core::policies::Policy;
use ladm_workloads::{dl_gemms, Scale};

fn main() {
    // Square GEMM: A and B tie, row-binding wins (paper machine).
    let square = ladm_workloads::by_name("SQ-GEMM", Scale::Test).expect("suite workload");
    let plan = Lasp::ladm().plan(square.kernels[0].launch(), &Topology::paper_multi_gpu());
    println!("SQ-GEMM (square):        schedule = {}", plan.schedule);

    // DL layer on a 4-GPU DGX: B (weights) is much larger and its 16 KiB
    // pitch is page-expressible over 4 nodes — column-binding wins.
    let fc = ladm_workloads::by_name("Alexnet-FC-2", Scale::Test).expect("suite workload");
    let plan = Lasp::ladm().plan(fc.kernels[0].launch(), &Topology::dgx1());
    println!(
        "Alexnet-FC-2 (B >> A):   schedule = {} (DGX-1)\n",
        plan.schedule
    );

    // Reproduce the DGX-1 validation: DL GEMMs under LASP vs CODA vs
    // kernel-wide on a 4-GPU NVLink box.
    let cfg = SimConfig::dgx1();
    println!(
        "{:<14} {:>12} {:>12} {:>12} {:>9} {:>9}",
        "layer", "LASP", "CODA", "Kernel-Wide", "vs CODA", "vs KW"
    );
    let mut prod_coda = 1.0f64;
    let mut prod_kw = 1.0f64;
    let layers = dl_gemms(Scale::Test);
    for w in &layers {
        let run = |p: &dyn Policy| {
            let mut sys = GpuSystem::new(cfg.clone());
            let mut total = KernelStats::default();
            for k in &w.kernels {
                total.accumulate(&sys.run(&**k, p));
            }
            total.cycles
        };
        let lasp = run(&Lasp::ladm());
        let coda = run(&Coda::flat());
        let kw = run(&KernelWide::new());
        prod_coda *= coda / lasp;
        prod_kw *= kw / lasp;
        println!(
            "{:<14} {lasp:>12.0} {coda:>12.0} {kw:>12.0} {:>8.2}x {:>8.2}x",
            w.name,
            coda / lasp,
            kw / lasp
        );
    }
    let n = layers.len() as f64;
    println!(
        "\nGeomean: LASP is {:.2}x faster than CODA and {:.2}x faster than kernel-wide",
        prod_coda.powf(1.0 / n),
        prod_kw.powf(1.0 / n)
    );
    println!("(paper §IV-C measured 1.9x and 1.4x on a real DGX-1)");
}
