//! Topology explorer: how does one workload scale across machine shapes
//! and interconnect generations? A miniature of the paper's Figure 4
//! bandwidth-sensitivity study for a single kernel.
//!
//! ```text
//! cargo run --release --example topology_explorer [workload]
//! ```

use ladm::prelude::*;
use ladm_workloads::{by_name, Scale};

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "SRAD".into());
    let Some(w) = by_name(&name, Scale::Test) else {
        eprintln!("unknown workload '{name}' — try VecAdd, SRAD, SQ-GEMM, PageRank …");
        std::process::exit(2);
    };
    println!(
        "{} [{}], {} blocks, {:.1} MiB\n",
        w.name,
        w.kind,
        w.launched_tbs(),
        w.input_bytes() as f64 / (1024.0 * 1024.0)
    );

    let machines: Vec<(&str, SimConfig)> = vec![
        ("monolithic-256SM", SimConfig::monolithic()),
        ("4-GPU xbar 90GB/s", SimConfig::fig4_xbar(90)),
        ("4-GPU xbar 180GB/s", SimConfig::fig4_xbar(180)),
        ("4-GPU xbar 360GB/s", SimConfig::fig4_xbar(360)),
        ("MCM ring 1.4TB/s", SimConfig::fig4_ring(1400)),
        ("MCM ring 2.8TB/s", SimConfig::fig4_ring(2800)),
        ("4x4 hierarchical", SimConfig::paper_multi_gpu()),
        ("DGX-1 NVLink", SimConfig::dgx1()),
    ];

    let mono_cycles = {
        let mut sys = GpuSystem::new(SimConfig::monolithic());
        let mut total = KernelStats::default();
        for k in &w.kernels {
            total.accumulate(&sys.run(&**k, &Lasp::ladm()));
        }
        total.cycles
    };

    println!(
        "{:<20} {:>12} {:>10} {:>10} {:>12}",
        "machine", "cycles", "vs mono", "off-chip", "faults"
    );
    for (label, cfg) in machines {
        let mut sys = GpuSystem::new(cfg);
        let mut total = KernelStats::default();
        for k in &w.kernels {
            total.accumulate(&sys.run(&**k, &Lasp::ladm()));
        }
        println!(
            "{label:<20} {:>12.0} {:>9.2}x {:>9.1}% {:>12}",
            total.cycles,
            mono_cycles / total.cycles,
            total.offchip_fraction() * 100.0,
            total.page_faults
        );
    }
    println!(
        "\nUnder LADM the NUMA machines track the monolithic reference as the\n\
         interconnect improves — the paper's argument that smart placement can\n\
         substitute for expensive links."
    );
}
