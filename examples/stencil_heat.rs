//! Heat-diffusion stencil (HotSpot-style) across NUMA policies: adjacent
//! locality means contiguous row chunks beat every round-robin scheme,
//! and LADM finds that automatically from the index analysis.
//!
//! ```text
//! cargo run --release --example stencil_heat
//! ```

use ladm::prelude::*;
use ladm_core::policies::Policy;
use ladm_workloads::{by_name, Scale};

fn main() {
    let w = by_name("HS", Scale::Test).expect("suite workload");
    let launch = w.kernels[0].launch();
    println!(
        "HotSpot: {}x{} blocks of {}x{} threads, {:.1} MiB of plates\n",
        launch.grid.0,
        launch.grid.1,
        launch.block.0,
        launch.block.1,
        w.input_bytes() as f64 / (1024.0 * 1024.0)
    );

    let cfg = SimConfig::paper_multi_gpu();
    let mono = {
        let mut sys = GpuSystem::new(SimConfig::monolithic());
        sys.run(&*w.kernels[0], &Lasp::ladm()).cycles
    };

    let policies: Vec<Box<dyn Policy>> = vec![
        Box::new(BaselineRr::new()),
        Box::new(BatchFt::new()),
        Box::new(KernelWide::new()),
        Box::new(Coda::hierarchical()),
        Box::new(Lasp::ladm()),
    ];
    println!(
        "{:<14} {:>12} {:>10} {:>12} {:>14}",
        "policy", "cycles", "vs mono", "off-chip", "inter-GPU B"
    );
    for p in &policies {
        let mut sys = GpuSystem::new(cfg.clone());
        let s = sys.run(&*w.kernels[0], &**p);
        println!(
            "{:<14} {:>12.0} {:>9.2}x {:>11.1}% {:>14}",
            p.name(),
            s.cycles,
            mono / s.cycles,
            s.offchip_fraction() * 100.0,
            s.inter_gpu_bytes
        );
    }
    println!(
        "\nThe stencil's halo exchange only crosses node boundaries at chunk\n\
         edges, so LADM's whole-grid-row batches capture adjacent locality\n\
         that every round-robin scheduler destroys (paper §V-A: 4x vs H-CODA)."
    );
}
